package gpu

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"dynacc/internal/sim"
)

// ErrDeviceFailed is wrapped by every error a failed device returns;
// callers test for it with errors.Is to distinguish hardware loss from
// argument errors.
var ErrDeviceFailed = errors.New("device failed")

// Device is one virtual accelerator. All methods must be called from
// simulation processes; operations charge virtual time and contend on the
// device's engines.
type Device struct {
	sim      *sim.Simulation
	name     string
	model    Model
	registry *Registry
	alloc    *allocator

	// dma is the single copy engine: pinned (DMA) transfers serialize on
	// it. Pageable transfers run on the host CPU (PIO) and do not occupy
	// it.
	dma *sim.Resource
	// compute is the kernel execution engine; the C1060 generation runs
	// one kernel at a time.
	compute *sim.Resource

	execute bool

	// cfgClass is the kernel class the device is currently configured
	// for. Models with a ReconfigLatency (FPGA-style) charge it on the
	// first launch of a class different from the resident one; GPUs
	// (zero latency) ignore it.
	cfgClass string

	// failure, when non-nil, makes every operation fail (fault injection:
	// the silicon is gone but the daemon in front of it is still up).
	failure error

	// stats
	bytesIn, bytesOut int64
	launches          int64
	busy              sim.Duration
}

// Config configures a new Device.
type Config struct {
	// Name identifies the device in diagnostics.
	Name string
	// Model is the performance model; required.
	Model Model
	// Registry resolves kernel names; required for LaunchKernel.
	Registry *Registry
	// Execute selects execute mode (real data) over model mode.
	Execute bool
}

// NewDevice creates a device.
func NewDevice(s *sim.Simulation, cfg Config) (*Device, error) {
	if err := cfg.Model.Validate(); err != nil {
		return nil, err
	}
	name := cfg.Name
	if name == "" {
		name = cfg.Model.Name
	}
	reg := cfg.Registry
	if reg == nil {
		reg = NewRegistry()
	}
	return &Device{
		sim:      s,
		name:     name,
		model:    cfg.Model,
		registry: reg,
		alloc:    newAllocator(cfg.Model.MemBytes, cfg.Execute),
		dma:      sim.NewResource(s, name+".dma", 1),
		compute:  sim.NewResource(s, name+".compute", 1),
		execute:  cfg.Execute,
	}, nil
}

// Name returns the device name.
func (d *Device) Name() string { return d.name }

// Model returns the device performance model.
func (d *Device) Model() Model { return d.model }

// ExecuteMode reports whether the device stores real data.
func (d *Device) ExecuteMode() bool { return d.execute }

// Registry returns the kernel registry the device resolves names in.
func (d *Device) Registry() *Registry { return d.registry }

// Fail marks the device failed with the given cause: every subsequent
// operation returns an error wrapping ErrDeviceFailed until Repair. The
// daemon in front of the device keeps serving (and reporting the failure),
// which is how a real node reports a dead GPU.
func (d *Device) Fail(cause string) {
	if cause == "" {
		cause = "injected fault"
	}
	d.failure = fmt.Errorf("gpu: %s: %w: %s", d.name, ErrDeviceFailed, cause)
}

// Repair clears a failure injected by Fail. The device contents are NOT
// restored — callers must re-allocate and re-upload, as after a real
// device replacement.
func (d *Device) Repair() {
	d.failure = nil
}

// Failed returns the active failure, or nil for a healthy device.
func (d *Device) Failed() error { return d.failure }

// ResetEngines replaces the DMA and compute semaphores with fresh ones,
// releasing units stranded by processes that died mid-operation. Part of
// restarting a crashed daemon; never call it while live work is in flight.
func (d *Device) ResetEngines() {
	d.dma = sim.NewResource(d.sim, d.name+".dma", 1)
	d.compute = sim.NewResource(d.sim, d.name+".compute", 1)
}

// MemAlloc allocates n bytes of device memory.
func (d *Device) MemAlloc(p *sim.Proc, n int) (Ptr, error) {
	p.Wait(d.model.MallocOverhead)
	if d.failure != nil {
		return 0, d.failure
	}
	return d.alloc.alloc(n)
}

// MemFree releases an allocation.
func (d *Device) MemFree(p *sim.Proc, ptr Ptr) error {
	p.Wait(d.model.MallocOverhead)
	if d.failure != nil {
		return d.failure
	}
	return d.alloc.freePtr(ptr)
}

// MemUsed reports the bytes currently allocated (rounded to allocation
// granularity).
func (d *Device) MemUsed() int64 { return int64(d.alloc.used) }

// Reset frees every live allocation (cuCtxDestroy-style): the middleware
// runs it between exclusive assignments so a new holder always gets a
// clean device.
func (d *Device) Reset(p *sim.Proc) {
	p.Wait(d.model.MallocOverhead)
	d.alloc.reset()
}

// copyModel selects the cost model for a transfer.
func (d *Device) copyModel(toDevice, pinned bool) CopyModel {
	switch {
	case toDevice && pinned:
		return d.model.H2DPinned
	case toDevice:
		return d.model.H2DPageable
	case pinned:
		return d.model.D2HPinned
	default:
		return d.model.D2HPageable
	}
}

// CopyH2D copies len(src) bytes from host memory into device memory at
// dst+off. Pinned transfers occupy the DMA engine; pageable transfers run
// on the calling CPU. In model mode src may be nil with the size given by
// n; if src is non-nil it must be n bytes long.
func (d *Device) CopyH2D(p *sim.Proc, dst Ptr, off int, src []byte, n int, pinned bool) error {
	if src != nil && len(src) != n {
		return fmt.Errorf("gpu: CopyH2D: src has %d bytes, size argument says %d", len(src), n)
	}
	if d.failure != nil {
		return d.failure
	}
	if err := d.checkRange(dst, off, n); err != nil {
		return err
	}
	cm := d.copyModel(true, pinned)
	t := cm.Time(n)
	if pinned {
		d.dma.Acquire(p, 1)
		p.Wait(t)
		d.dma.Release(1)
	} else {
		p.Wait(t)
	}
	d.busy += t
	d.bytesIn += int64(n)
	if d.execute && src != nil {
		buf, err := d.alloc.slice(dst, off, n)
		if err != nil {
			return err
		}
		copy(buf, src)
	}
	return nil
}

// CopyD2H copies n bytes from device memory at src+off into dst (or
// discards them in model mode when dst is nil).
func (d *Device) CopyD2H(p *sim.Proc, dst []byte, src Ptr, off, n int, pinned bool) error {
	if dst != nil && len(dst) != n {
		return fmt.Errorf("gpu: CopyD2H: dst has %d bytes, size argument says %d", len(dst), n)
	}
	if d.failure != nil {
		return d.failure
	}
	if err := d.checkRange(src, off, n); err != nil {
		return err
	}
	cm := d.copyModel(false, pinned)
	t := cm.Time(n)
	if pinned {
		d.dma.Acquire(p, 1)
		p.Wait(t)
		d.dma.Release(1)
	} else {
		p.Wait(t)
	}
	d.busy += t
	d.bytesOut += int64(n)
	if d.execute && dst != nil {
		buf, err := d.alloc.slice(src, off, n)
		if err != nil {
			return err
		}
		copy(dst, buf)
	}
	return nil
}

// Memset fills n bytes of device memory at ptr+off with value
// (cuMemsetD8): a memory-bandwidth-bound device-side operation.
func (d *Device) Memset(p *sim.Proc, ptr Ptr, off, n int, value byte) error {
	if d.failure != nil {
		return d.failure
	}
	if err := d.checkRange(ptr, off, n); err != nil {
		return err
	}
	p.Wait(sim.Duration(float64(n)/d.model.MemBandwidth*1e9) + d.model.LaunchOverhead)
	if d.execute {
		buf, err := d.alloc.slice(ptr, off, n)
		if err != nil {
			return err
		}
		for i := range buf {
			buf[i] = value
		}
	}
	return nil
}

// CopyD2D copies n bytes between two device allocations through device
// memory (no PCIe transfer; cost is 2n over the memory bandwidth).
func (d *Device) CopyD2D(p *sim.Proc, dst Ptr, dstOff int, src Ptr, srcOff, n int) error {
	if d.failure != nil {
		return d.failure
	}
	if err := d.checkRange(dst, dstOff, n); err != nil {
		return err
	}
	if err := d.checkRange(src, srcOff, n); err != nil {
		return err
	}
	p.Wait(sim.Duration(2 * float64(n) / d.model.MemBandwidth * 1e9))
	if d.execute {
		db, err := d.alloc.slice(dst, dstOff, n)
		if err != nil {
			return err
		}
		sb, err := d.alloc.slice(src, srcOff, n)
		if err != nil {
			return err
		}
		copy(db, sb)
	}
	return nil
}

// AsyncSetupCost is the host cost of posting one asynchronous copy; the
// middleware's pipeline pays it per block.
func (d *Device) AsyncSetupCost() sim.Duration { return d.model.AsyncSetup }

// CopyEngineTransfer charges the virtual time of an n-byte host↔device
// transfer without moving data: pinned transfers occupy the DMA engine,
// pageable ones the calling CPU. The middleware uses it to time pipeline
// blocks whose bytes are placed separately (ScatterColumns/GatherColumns).
// It reports the device failure, if any (checked again after the engine
// time, so a device dying mid-transfer fails that transfer).
func (d *Device) CopyEngineTransfer(p *sim.Proc, n int, toDevice, pinned bool) error {
	if d.failure != nil {
		return d.failure
	}
	cm := d.copyModel(toDevice, pinned)
	t := cm.Time(n)
	if pinned {
		d.dma.Acquire(p, 1)
		p.Wait(t)
		d.dma.Release(1)
	} else {
		p.Wait(t)
	}
	d.busy += t
	if toDevice {
		d.bytesIn += int64(n)
	} else {
		d.bytesOut += int64(n)
	}
	return d.failure
}

// ValidRange checks that [ptr+off, ptr+off+n) lies inside a live
// allocation, without charging any virtual time.
func (d *Device) ValidRange(ptr Ptr, off, n int) error { return d.checkRange(ptr, off, n) }

// checkRange validates a (ptr, off, n) access against the allocation map.
func (d *Device) checkRange(ptr Ptr, off, n int) error {
	if n < 0 || off < 0 {
		return fmt.Errorf("gpu: negative range [%d,%d)", off, off+n)
	}
	size, ok := d.alloc.sizeOf(ptr)
	if !ok {
		return fmt.Errorf("gpu: invalid device pointer %#x", uint64(ptr))
	}
	if uint64(off+n) > size {
		return fmt.Errorf("gpu: access [%d,%d) beyond allocation of %d bytes", off, off+n, size)
	}
	return nil
}

// LaunchKernel resolves name in the registry, charges the launch overhead
// plus the kernel cost on the compute engine, and (in execute mode) runs
// the kernel body. A panicking kernel (bad arguments, out-of-range
// access through the typed accessors) is reported as a launch error, the
// way a CUDA kernel fault surfaces, instead of taking the daemon down.
func (d *Device) LaunchKernel(p *sim.Proc, name string, l Launch) error {
	return d.launchKernel(p, name, l, d.model.LaunchOverhead)
}

// LaunchKernelQueued launches a kernel that arrived inside an already-
// submitted command buffer: the buffer's first command paid the host-side
// submission share of the launch overhead for the whole buffer, so only
// the device-side dispatch cost is charged here. With a zero
// Model.SubmitOverhead this is exactly LaunchKernel.
func (d *Device) LaunchKernelQueued(p *sim.Proc, name string, l Launch) error {
	return d.launchKernel(p, name, l, d.model.LaunchOverhead-d.model.SubmitOverhead)
}

func (d *Device) launchKernel(p *sim.Proc, name string, l Launch, overhead sim.Duration) (err error) {
	k, ok := d.registry.Lookup(name)
	if !ok {
		return fmt.Errorf("gpu: unknown kernel %q", name)
	}
	class := KernelClass(name)
	if !d.model.Capability().Supports(class) {
		return fmt.Errorf("gpu: %s: kernel class %q not supported by model %q", d.name, class, d.model.Name)
	}
	if d.failure != nil {
		return d.failure
	}
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("gpu: kernel %q faulted: %v", name, r)
		}
	}()
	cost := overhead + k.Cost(l, d.model)
	if d.model.ReconfigLatency > 0 && class != d.cfgClass {
		// First launch of a new kernel class: load its configuration
		// (FPGA partial-reconfiguration bitstream). Charged once; later
		// launches of the same class find the datapath resident.
		cost += d.model.ReconfigLatency
		d.cfgClass = class
	}
	d.compute.Acquire(p, 1)
	p.Wait(cost)
	d.compute.Release(1)
	d.busy += cost
	d.launches++
	if d.failure != nil {
		// The device died while the kernel was on the silicon.
		return d.failure
	}
	if d.execute {
		if err := k.Execute(l, d); err != nil {
			return fmt.Errorf("gpu: kernel %q: %w", name, err)
		}
	}
	return nil
}

// Stats reports cumulative device activity.
type Stats struct {
	BytesIn  int64
	BytesOut int64
	Launches int64
	Busy     sim.Duration
}

// Stats returns cumulative activity counters.
func (d *Device) Stats() Stats {
	return Stats{BytesIn: d.bytesIn, BytesOut: d.bytesOut, Launches: d.launches, Busy: d.busy}
}

// ScatterColumns writes a packed buffer of cols columns (colBytes bytes
// each) into device memory as a strided window: column c lands at
// ptr+off+c*pitchBytes. No virtual time is charged — strided copies are
// timed through their block pipeline; this call only places the bytes in
// execute mode (it is a no-op for nil data).
func (d *Device) ScatterColumns(ptr Ptr, off, colBytes, cols, pitchBytes int, data []byte) error {
	if colBytes < 0 || cols < 0 || pitchBytes < colBytes {
		return fmt.Errorf("gpu: scatter: invalid geometry colBytes=%d cols=%d pitch=%d", colBytes, cols, pitchBytes)
	}
	if cols > 0 {
		if err := d.checkRange(ptr, off, (cols-1)*pitchBytes+colBytes); err != nil {
			return err
		}
	}
	if !d.execute || data == nil {
		return nil
	}
	if len(data) != colBytes*cols {
		return fmt.Errorf("gpu: scatter: %d bytes for %d columns of %d", len(data), cols, colBytes)
	}
	for c := 0; c < cols; c++ {
		buf, err := d.alloc.slice(ptr, off+c*pitchBytes, colBytes)
		if err != nil {
			return err
		}
		copy(buf, data[c*colBytes:(c+1)*colBytes])
	}
	return nil
}

// GatherColumns reads a strided window into a packed buffer, the inverse
// of ScatterColumns. In model mode it returns nil after validating the
// range.
func (d *Device) GatherColumns(ptr Ptr, off, colBytes, cols, pitchBytes int) ([]byte, error) {
	if colBytes < 0 || cols < 0 || pitchBytes < colBytes {
		return nil, fmt.Errorf("gpu: gather: invalid geometry colBytes=%d cols=%d pitch=%d", colBytes, cols, pitchBytes)
	}
	if cols > 0 {
		if err := d.checkRange(ptr, off, (cols-1)*pitchBytes+colBytes); err != nil {
			return nil, err
		}
	}
	if !d.execute {
		return nil, nil
	}
	out := make([]byte, colBytes*cols)
	for c := 0; c < cols; c++ {
		buf, err := d.alloc.slice(ptr, off+c*pitchBytes, colBytes)
		if err != nil {
			return nil, err
		}
		copy(out[c*colBytes:], buf)
	}
	return out, nil
}

// GatherColumnsInto reads the packed-byte subrange [lo, lo+len(dst)) of
// the strided window into dst, where lo indexes the packed layout
// GatherColumns would produce. The pipelined D2H path uses it to gather
// one transfer block at a time directly into a pooled buffer instead of
// materializing the whole payload. Execute mode only.
func (d *Device) GatherColumnsInto(dst []byte, ptr Ptr, off, colBytes, cols, pitchBytes, lo int) error {
	if colBytes <= 0 || cols < 0 || pitchBytes < colBytes {
		return fmt.Errorf("gpu: gather: invalid geometry colBytes=%d cols=%d pitch=%d", colBytes, cols, pitchBytes)
	}
	if lo < 0 || lo+len(dst) > colBytes*cols {
		return fmt.Errorf("gpu: gather: range [%d,%d) outside %d packed bytes", lo, lo+len(dst), colBytes*cols)
	}
	for n := 0; n < len(dst); {
		b := lo + n
		c := b / colBytes
		r := b % colBytes
		take := colBytes - r
		if rem := len(dst) - n; take > rem {
			take = rem
		}
		buf, err := d.alloc.slice(ptr, off+c*pitchBytes+r, take)
		if err != nil {
			return err
		}
		copy(dst[n:n+take], buf)
		n += take
	}
	return nil
}

// Execute-mode data accessors, used by kernel implementations and tests.

// Bytes returns the backing bytes of [ptr+off, ptr+off+n). Execute mode
// only.
func (d *Device) Bytes(ptr Ptr, off, n int) ([]byte, error) {
	return d.alloc.slice(ptr, off, n)
}

// ReadFloat64s decodes device memory at byte offset off as n float64
// values into a fresh slice. Kernels follow a read–compute–WriteFloat64s
// pattern. Execute mode only.
func (d *Device) ReadFloat64s(ptr Ptr, off, n int) ([]float64, error) {
	raw, err := d.alloc.slice(ptr, off, 8*n)
	if err != nil {
		return nil, err
	}
	return bytesToF64(raw), nil
}

// WriteFloat64s stores vals into device memory at byte offset off.
// Execute mode only; charges no virtual time (kernel costs cover it).
func (d *Device) WriteFloat64s(ptr Ptr, off int, vals []float64) error {
	raw, err := d.alloc.slice(ptr, off, 8*len(vals))
	if err != nil {
		return err
	}
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	return nil
}

// bytesToF64 decodes a byte slice into float64s.
func bytesToF64(raw []byte) []float64 {
	out := make([]float64, len(raw)/8)
	for i := range out {
		out[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	return out
}

// StoreFloat64s writes vals back over the raw bytes previously obtained
// via Bytes; helper for kernels operating on float64 data.
func StoreFloat64s(raw []byte, vals []float64) {
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
}
