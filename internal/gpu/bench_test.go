package gpu

import (
	"testing"

	"dynacc/internal/sim"
)

// BenchmarkAllocFree measures allocator throughput under churn.
func BenchmarkAllocFree(b *testing.B) {
	a := newAllocator(1<<30, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p1, err := a.alloc(4096)
		if err != nil {
			b.Fatal(err)
		}
		p2, err := a.alloc(64 * 1024)
		if err != nil {
			b.Fatal(err)
		}
		if err := a.freePtr(p1); err != nil {
			b.Fatal(err)
		}
		if err := a.freePtr(p2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimulatedCopies measures the simulator cost of timed device
// copies.
func BenchmarkSimulatedCopies(b *testing.B) {
	s := sim.New()
	d, err := NewDevice(s, Config{Model: TeslaC1060()})
	if err != nil {
		b.Fatal(err)
	}
	s.Spawn("host", func(p *sim.Proc) {
		ptr, err := d.MemAlloc(p, 1<<20)
		if err != nil {
			b.Error(err)
			return
		}
		for i := 0; i < b.N; i++ {
			if err := d.CopyH2D(p, ptr, 0, nil, 1<<20, true); err != nil {
				b.Error(err)
				return
			}
		}
	})
	b.ResetTimer()
	if err := s.Run(); err != nil {
		b.Fatal(err)
	}
}
