package gpu

import "sort"

// AllocView is the per-session bookkeeping a multi-tenant daemon layers
// over a single device allocator: which allocations a session owns and
// how many bytes of its quota they consume. It performs no device
// operations itself — the daemon pairs every Note* call with the real
// MemAlloc/MemFree — so a view can be discarded without touching the
// device, and the device allocator remains the single source of truth
// for placement.
type AllocView struct {
	quota int64 // 0 = unlimited
	used  int64
	owned map[Ptr]int // ptr -> size
}

// NewAllocView returns an empty view with the given quota in bytes.
// A quota of 0 means unlimited.
func NewAllocView(quota int64) *AllocView {
	return &AllocView{quota: quota, owned: make(map[Ptr]int)}
}

// Quota returns the view's byte quota (0 = unlimited).
func (v *AllocView) Quota() int64 { return v.quota }

// Used returns the bytes currently charged against the quota.
func (v *AllocView) Used() int64 { return v.used }

// Count returns the number of live allocations owned by the view.
func (v *AllocView) Count() int { return len(v.owned) }

// Admits reports whether an allocation of n bytes fits under the quota.
func (v *AllocView) Admits(n int) bool {
	return v.quota == 0 || v.used+int64(n) <= v.quota
}

// NoteAlloc records ownership of a fresh allocation.
func (v *AllocView) NoteAlloc(p Ptr, n int) {
	v.owned[p] = n
	v.used += int64(n)
}

// Owns reports whether the view owns the allocation at p.
func (v *AllocView) Owns(p Ptr) bool {
	_, ok := v.owned[p]
	return ok
}

// NoteFree drops ownership of p and returns the bytes credited back to
// the quota (0 if the view did not own p).
func (v *AllocView) NoteFree(p Ptr) int {
	n, ok := v.owned[p]
	if !ok {
		return 0
	}
	delete(v.owned, p)
	v.used -= int64(n)
	return n
}

// Ptrs returns the owned pointers in ascending order, so release loops
// are deterministic.
func (v *AllocView) Ptrs() []Ptr {
	out := make([]Ptr, 0, len(v.owned))
	for p := range v.owned {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
