package gpu

import (
	"fmt"
	"sort"
)

// Ptr is a device-memory address. The zero Ptr is the null pointer.
type Ptr uint64

// IsNull reports whether p is the null device pointer.
func (p Ptr) IsNull() bool { return p == 0 }

// allocAlign is the allocation granularity, matching CUDA's 256-byte
// alignment guarantee.
const allocAlign = 256

// region is a contiguous span of device memory.
type region struct {
	off  uint64
	size uint64
}

// allocator is a first-fit device-memory allocator with free-list
// coalescing. Address 0 is reserved so that Ptr(0) means null.
type allocator struct {
	total uint64
	used  uint64
	free  []region       // sorted by offset, pairwise non-adjacent
	live  map[Ptr]uint64 // allocation -> size
	data  map[Ptr][]byte // execute mode: backing store per allocation
	exec  bool
}

func newAllocator(total int64, exec bool) *allocator {
	a := &allocator{
		total: uint64(total),
		free:  []region{{off: allocAlign, size: uint64(total) - allocAlign}},
		live:  make(map[Ptr]uint64),
		exec:  exec,
	}
	if exec {
		a.data = make(map[Ptr][]byte)
	}
	return a
}

// errOOM mirrors CUDA_ERROR_OUT_OF_MEMORY.
type oomError struct{ want, free uint64 }

func (e *oomError) Error() string {
	return fmt.Sprintf("gpu: out of device memory: want %d bytes, %d free", e.want, e.free)
}

// IsOOM reports whether err is a device out-of-memory failure.
func IsOOM(err error) bool {
	_, ok := err.(*oomError)
	return ok
}

func roundUp(n uint64) uint64 {
	return (n + allocAlign - 1) &^ (allocAlign - 1)
}

// alloc reserves n bytes (n > 0) and returns the device pointer.
func (a *allocator) alloc(n int) (Ptr, error) {
	if n <= 0 {
		return 0, fmt.Errorf("gpu: allocation size must be positive, got %d", n)
	}
	want := roundUp(uint64(n))
	for i, r := range a.free {
		if r.size < want {
			continue
		}
		p := Ptr(r.off)
		if r.size == want {
			a.free = append(a.free[:i], a.free[i+1:]...)
		} else {
			a.free[i] = region{off: r.off + want, size: r.size - want}
		}
		a.live[p] = want
		a.used += want
		if a.exec {
			a.data[p] = make([]byte, n)
		}
		return p, nil
	}
	return 0, &oomError{want: want, free: a.total - allocAlign - a.used}
}

// freePtr releases an allocation made by alloc.
func (a *allocator) freePtr(p Ptr) error {
	size, ok := a.live[p]
	if !ok {
		return fmt.Errorf("gpu: free of invalid device pointer %#x", uint64(p))
	}
	delete(a.live, p)
	if a.exec {
		delete(a.data, p)
	}
	a.used -= size
	// Insert into the sorted free list and coalesce with neighbours.
	i := sort.Search(len(a.free), func(i int) bool { return a.free[i].off > uint64(p) })
	a.free = append(a.free, region{})
	copy(a.free[i+1:], a.free[i:])
	a.free[i] = region{off: uint64(p), size: size}
	a.coalesce(i)
	return nil
}

func (a *allocator) coalesce(i int) {
	// Merge with successor first, then predecessor.
	if i+1 < len(a.free) && a.free[i].off+a.free[i].size == a.free[i+1].off {
		a.free[i].size += a.free[i+1].size
		a.free = append(a.free[:i+1], a.free[i+2:]...)
	}
	if i > 0 && a.free[i-1].off+a.free[i-1].size == a.free[i].off {
		a.free[i-1].size += a.free[i].size
		a.free = append(a.free[:i], a.free[i+1:]...)
	}
}

// slice resolves (p+off, n) to the backing bytes of the containing
// allocation. Execute mode only; bounds are checked against the
// allocation like a device segfault check.
func (a *allocator) slice(p Ptr, off, n int) ([]byte, error) {
	if !a.exec {
		return nil, fmt.Errorf("gpu: data access in model mode")
	}
	buf, ok := a.data[p]
	if !ok {
		return nil, fmt.Errorf("gpu: invalid device pointer %#x", uint64(p))
	}
	if off < 0 || n < 0 || off+n > len(buf) {
		return nil, fmt.Errorf("gpu: device access [%d,%d) out of allocation of %d bytes", off, off+n, len(buf))
	}
	return buf[off : off+n], nil
}

// reset releases every live allocation, returning the allocator to its
// initial state.
func (a *allocator) reset() {
	a.free = []region{{off: allocAlign, size: a.total - allocAlign}}
	a.used = 0
	a.live = make(map[Ptr]uint64)
	if a.exec {
		a.data = make(map[Ptr][]byte)
	}
}

// sizeOf returns the rounded size of a live allocation.
func (a *allocator) sizeOf(p Ptr) (uint64, bool) {
	s, ok := a.live[p]
	return s, ok
}
