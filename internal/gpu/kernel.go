package gpu

import (
	"fmt"
	"sort"
	"sync"

	"dynacc/internal/sim"
)

// ValueKind discriminates kernel-argument types.
type ValueKind uint8

// Kernel argument kinds.
const (
	KindPtr ValueKind = iota + 1
	KindInt
	KindFloat
)

// Value is one kernel argument: a device pointer, an integer, or a
// float64. Values are plain data so the middleware can marshal launches
// onto the wire.
type Value struct {
	Kind ValueKind
	Ptr  Ptr
	Int  int64
	F64  float64
}

// PtrArg wraps a device pointer argument.
func PtrArg(p Ptr) Value { return Value{Kind: KindPtr, Ptr: p} }

// IntArg wraps an integer argument.
func IntArg(v int64) Value { return Value{Kind: KindInt, Int: v} }

// FloatArg wraps a float64 argument.
func FloatArg(v float64) Value { return Value{Kind: KindFloat, F64: v} }

// String renders the argument for diagnostics.
func (v Value) String() string {
	switch v.Kind {
	case KindPtr:
		return fmt.Sprintf("ptr:%#x", uint64(v.Ptr))
	case KindInt:
		return fmt.Sprintf("int:%d", v.Int)
	case KindFloat:
		return fmt.Sprintf("f64:%g", v.F64)
	default:
		return fmt.Sprintf("value(kind=%d)", v.Kind)
	}
}

// Dim3 is a CUDA-style grid or block dimension.
type Dim3 struct{ X, Y, Z int }

// Count returns the total extent (X*Y*Z), treating zero components as 1.
func (d Dim3) Count() int {
	n := 1
	for _, v := range []int{d.X, d.Y, d.Z} {
		if v > 1 {
			n *= v
		}
	}
	return n
}

// Launch is one kernel invocation: configuration plus arguments.
type Launch struct {
	Grid, Block Dim3
	Args        []Value
}

// Arg returns the i-th argument, panicking with a clear message when the
// kernel was launched with a wrong signature (the CUDA analogue is an
// invalid-parameter launch failure).
func (l Launch) Arg(i int) Value {
	if i < 0 || i >= len(l.Args) {
		panic(fmt.Sprintf("gpu: kernel argument %d out of %d", i, len(l.Args)))
	}
	return l.Args[i]
}

// Kernel is a device function: a cost model (always available) plus an
// optional real implementation used in execute mode.
type Kernel interface {
	// Name is the symbol the front-end refers to (acKernelCreate).
	Name() string
	// Cost returns the virtual execution time of one launch on the given
	// device model.
	Cost(l Launch, m Model) sim.Duration
	// Execute runs the kernel against device memory. It is only called in
	// execute mode.
	Execute(l Launch, d *Device) error
}

// Registry maps kernel names to implementations. A Registry is safe for
// concurrent registration at program start; lookups during a simulation
// happen from the single scheduler thread.
type Registry struct {
	mu      sync.RWMutex
	kernels map[string]Kernel
}

// NewRegistry returns an empty kernel registry.
func NewRegistry() *Registry {
	return &Registry{kernels: make(map[string]Kernel)}
}

// Register adds a kernel; re-registering a name replaces the previous
// kernel (useful in tests).
func (r *Registry) Register(k Kernel) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.kernels[k.Name()] = k
}

// Lookup finds a kernel by name.
func (r *Registry) Lookup(name string) (Kernel, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	k, ok := r.kernels[name]
	return k, ok
}

// Names lists registered kernels, sorted.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	names := make([]string, 0, len(r.kernels))
	for n := range r.kernels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// FuncKernel adapts plain functions to the Kernel interface.
type FuncKernel struct {
	KernelName string
	CostFn     func(l Launch, m Model) sim.Duration
	ExecFn     func(l Launch, d *Device) error
}

// Name implements Kernel.
func (k FuncKernel) Name() string { return k.KernelName }

// Cost implements Kernel; a nil CostFn costs only the launch overhead.
func (k FuncKernel) Cost(l Launch, m Model) sim.Duration {
	if k.CostFn == nil {
		return 0
	}
	return k.CostFn(l, m)
}

// Execute implements Kernel; a nil ExecFn is a no-op (timing-only kernel).
func (k FuncKernel) Execute(l Launch, d *Device) error {
	if k.ExecFn == nil {
		return nil
	}
	return k.ExecFn(l, d)
}
