// Package gpu implements a virtual CUDA-style accelerator device for the
// dynacc simulation.
//
// A Device exposes the driver-API surface the paper's middleware needs —
// device-memory allocation, host↔device copies, kernel launches, and
// synchronization — with virtual-time costs drawn from a device Model.
// Copies occupy the device's single DMA engine (pinned transfers) or the
// host CPU (pageable transfers through programmed I/O), and kernels occupy
// the compute engine, so overlap and contention behave like the real
// hardware the paper measured.
//
// A device runs in one of two data modes:
//
//   - execute: device memory is backed by real buffers, copies move real
//     bytes, and kernels run their Go implementations. Used by tests and
//     examples to check numerics end to end.
//   - model: only sizes and virtual time are tracked. Used by paper-scale
//     benchmarks (a 64 MiB transfer costs the right virtual time without
//     allocating 64 MiB).
//
// Both modes follow the identical control path, so correctness results
// from execute mode transfer to the timings measured in model mode.
package gpu

import (
	"fmt"

	"dynacc/internal/sim"
)

// CopyModel is the cost of one host↔device copy operation: a fixed setup
// overhead plus size/bandwidth serialization.
type CopyModel struct {
	Overhead  sim.Duration
	Bandwidth float64 // bytes per second
}

// Time returns the virtual time of one copy of n bytes.
func (c CopyModel) Time(n int) sim.Duration {
	t := c.Overhead
	if n > 0 {
		t += sim.Duration(float64(n) / c.Bandwidth * 1e9)
	}
	return t
}

// Model describes the performance characteristics of one accelerator.
type Model struct {
	Name string

	// Class names the device family for capability-aware placement
	// ("c1060", "fermi", "fpga"); see Capability.
	Class string

	MemBytes int64 // device memory capacity

	// Host↔device copy engines. Pinned transfers are DMA through the copy
	// engine; pageable transfers are CPU programmed I/O.
	H2DPinned   CopyModel
	H2DPageable CopyModel
	D2HPinned   CopyModel
	D2HPageable CopyModel

	// AsyncSetup is the host-CPU cost of posting one asynchronous DMA
	// copy (cuMemcpyAsync); the paper's pipeline protocol pays it per
	// block.
	AsyncSetup sim.Duration

	// PeakDP is the double-precision peak in flop/s; kernel cost models
	// scale from it. PeakSP is the single-precision peak, reported in the
	// Capability descriptor for placement (no current kernel model uses
	// it directly).
	PeakDP float64
	PeakSP float64

	// MemBandwidth is the device-memory bandwidth in bytes/s, for
	// bandwidth-bound kernels.
	MemBandwidth float64

	// LaunchOverhead is the fixed host+device cost of one kernel launch.
	LaunchOverhead sim.Duration

	// SubmitOverhead is the host-side share of LaunchOverhead: the driver
	// submission cost (ioctl plus ring doorbell) of handing one command to
	// the device. A command buffer pays it once for the whole buffer —
	// kernels after the first in one buffer charge only the remaining
	// device-side dispatch cost (see Device.LaunchKernelQueued). Zero means
	// every launch pays the full LaunchOverhead, batched or not.
	SubmitOverhead sim.Duration

	// MallocOverhead is the cost of a device allocation or free.
	MallocOverhead sim.Duration

	// FixedEff, when positive, pins every kernel cost model to this
	// fraction of PeakDP instead of the model's size-dependent
	// efficiency curve: FPGA-style devices run synthesized datapaths at
	// a deterministic pipelined rate regardless of problem shape.
	FixedEff float64

	// ReconfigLatency is the one-time cost of loading the configuration
	// for a new kernel class (an FPGA partial-reconfiguration bitstream
	// load), charged on the first launch of each class. Zero for GPUs.
	ReconfigLatency sim.Duration

	// KernelClasses, when non-empty, restricts the device to those
	// kernel classes (see KernelClass); launches of any other class fail.
	// Empty means the device runs everything.
	KernelClasses []string
}

// Validate reports whether the model is usable.
func (m Model) Validate() error {
	switch {
	case m.MemBytes <= 0:
		return fmt.Errorf("gpu model %q: non-positive memory size", m.Name)
	case m.H2DPinned.Bandwidth <= 0 || m.H2DPageable.Bandwidth <= 0 ||
		m.D2HPinned.Bandwidth <= 0 || m.D2HPageable.Bandwidth <= 0:
		return fmt.Errorf("gpu model %q: non-positive copy bandwidth", m.Name)
	case m.PeakDP <= 0 || m.MemBandwidth <= 0:
		return fmt.Errorf("gpu model %q: non-positive compute rate", m.Name)
	case m.SubmitOverhead < 0 || m.SubmitOverhead > m.LaunchOverhead:
		return fmt.Errorf("gpu model %q: submit overhead %v outside [0, launch overhead %v]",
			m.Name, m.SubmitOverhead, m.LaunchOverhead)
	case m.FixedEff < 0 || m.FixedEff > 1:
		return fmt.Errorf("gpu model %q: fixed efficiency %v outside [0, 1]", m.Name, m.FixedEff)
	case m.ReconfigLatency < 0:
		return fmt.Errorf("gpu model %q: negative reconfiguration latency", m.Name)
	}
	return nil
}

const gib = 1 << 30
const mib = 1 << 20

// TeslaC1060 models the NVIDIA Tesla C1060 of the paper's testbed:
// 4 GiB GDDR3, ~78 GFlop/s double precision, ~102 GB/s device memory
// bandwidth, PCIe 2.0 x16. The copy-engine constants are calibrated so the
// CUDA SDK bandwidthTest curves peak near the paper's Figure 7/8
// measurements: ~5700 MiB/s pinned (DMA) and ~4700 MiB/s pageable (PIO)
// for 64 MiB payloads, ramping up through the kilobyte range.
func TeslaC1060() Model {
	return Model{
		Name:           "tesla-c1060",
		Class:          "c1060",
		MemBytes:       4 * gib,
		H2DPinned:      CopyModel{Overhead: 9 * sim.Microsecond, Bandwidth: 5760 * mib},
		H2DPageable:    CopyModel{Overhead: 11 * sim.Microsecond, Bandwidth: 4760 * mib},
		D2HPinned:      CopyModel{Overhead: 9 * sim.Microsecond, Bandwidth: 5680 * mib},
		D2HPageable:    CopyModel{Overhead: 11 * sim.Microsecond, Bandwidth: 4640 * mib},
		AsyncSetup:     3 * sim.Microsecond,
		PeakDP:         78e9,
		PeakSP:         624e9,
		MemBandwidth:   102e9,
		LaunchOverhead: 7 * sim.Microsecond,
		SubmitOverhead: 5 * sim.Microsecond,
		MallocOverhead: 10 * sim.Microsecond,
	}
}
