package gpu

// capability.go makes the device model a described, registrable family
// instead of a single hard-coded part: every Model carries a Capability
// descriptor (device class, peak rates, memory, launch/reconfiguration
// costs, supported kernel classes) that the resource manager and the
// hybrid drivers use for capability-aware placement, and a package-level
// registry maps model names to constructors so mixed fleets can be
// described by name ("tesla-c1060:2,tesla-m2050:1,fpga:1").

import (
	"sort"
	"strings"
	"sync"

	"dynacc/internal/sim"
)

// Capability is the placement-relevant summary of a device model: what
// the scheduler needs to match work to hardware without dragging the
// whole performance model across the wire.
type Capability struct {
	// Class names the device family ("c1060", "fermi", "fpga"). Devices
	// of one class are interchangeable for placement and migration.
	Class string
	// PeakDP and PeakSP are the double/single-precision peaks in flop/s.
	PeakDP float64
	PeakSP float64
	// MemBytes is the device memory capacity.
	MemBytes int64
	// LaunchOverhead is the fixed cost of one kernel launch;
	// ReconfigLatency is the one-time cost of switching kernel classes
	// (zero for GPUs, large for FPGA-style devices).
	LaunchOverhead  sim.Duration
	ReconfigLatency sim.Duration
	// KernelClasses lists the kernel classes the device can run; empty
	// means it runs everything (a general-purpose GPU).
	KernelClasses []string
}

// KernelClass derives the class of a kernel from its registered name:
// the prefix before the first dot ("magma.dlarfb" → "magma"), or the
// whole name for undotted kernels.
func KernelClass(name string) string {
	if i := strings.IndexByte(name, '.'); i >= 0 {
		return name[:i]
	}
	return name
}

// Supports reports whether the capability covers the given kernel class.
// An empty KernelClasses list means the device runs everything.
func (c Capability) Supports(kernelClass string) bool {
	if len(c.KernelClasses) == 0 {
		return true
	}
	for _, k := range c.KernelClasses {
		if k == kernelClass {
			return true
		}
	}
	return false
}

// Capability summarizes the model's placement descriptor.
func (m Model) Capability() Capability {
	return Capability{
		Class:           m.Class,
		PeakDP:          m.PeakDP,
		PeakSP:          m.PeakSP,
		MemBytes:        m.MemBytes,
		LaunchOverhead:  m.LaunchOverhead,
		ReconfigLatency: m.ReconfigLatency,
		KernelClasses:   m.KernelClasses,
	}
}

// SupportsKernel reports whether the model can run the named kernel.
func (m Model) SupportsKernel(name string) bool {
	return m.Capability().Supports(KernelClass(name))
}

// KernelEff resolves the efficiency a kernel cost model should use: a
// model with a fixed (deterministic) efficiency — the FPGA-style device,
// whose pipelined datapath runs every kernel at its synthesized rate —
// overrides the size-dependent default the cost model derived.
func (m Model) KernelEff(def float64) float64 {
	if m.FixedEff > 0 {
		return m.FixedEff
	}
	return def
}

// ---- Model registry ----

var (
	modelsMu sync.RWMutex
	models   = map[string]func() Model{}
)

// RegisterModel adds a model constructor to the package registry under
// the model's Name, replacing any previous registration.
func RegisterModel(fn func() Model) {
	name := fn().Name
	modelsMu.Lock()
	defer modelsMu.Unlock()
	models[name] = fn
}

// LookupModel returns a fresh instance of the named model.
func LookupModel(name string) (Model, bool) {
	modelsMu.RLock()
	fn, ok := models[name]
	modelsMu.RUnlock()
	if !ok {
		return Model{}, false
	}
	return fn(), true
}

// ModelNames lists the registered model names, sorted.
func ModelNames() []string {
	modelsMu.RLock()
	defer modelsMu.RUnlock()
	names := make([]string, 0, len(models))
	for n := range models {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	RegisterModel(TeslaC1060)
	RegisterModel(TeslaM2050)
	RegisterModel(FPGA)
}

// TeslaM2050 models the Fermi-generation NVIDIA Tesla M2050: 3 GiB
// GDDR5 with ECC on (the ECC tax costs ~12.5% of capacity and a similar
// share of sustained bandwidth), ~515 GFlop/s double precision, and a
// concurrent-kernel dispatch front-end that cuts the host-side
// submission share of the launch overhead roughly in half relative to
// the GT200-class C1060.
func TeslaM2050() Model {
	return Model{
		Name:           "tesla-m2050",
		Class:          "fermi",
		MemBytes:       3 * gib * 7 / 8, // ECC steals 1/8 of the 3 GiB
		H2DPinned:      CopyModel{Overhead: 8 * sim.Microsecond, Bandwidth: 5900 * mib},
		H2DPageable:    CopyModel{Overhead: 10 * sim.Microsecond, Bandwidth: 4900 * mib},
		D2HPinned:      CopyModel{Overhead: 8 * sim.Microsecond, Bandwidth: 5820 * mib},
		D2HPageable:    CopyModel{Overhead: 10 * sim.Microsecond, Bandwidth: 4780 * mib},
		AsyncSetup:     3 * sim.Microsecond,
		PeakDP:         515e9,
		PeakSP:         1030e9,
		MemBandwidth:   118e9, // 148 GB/s raw, ECC-taxed
		LaunchOverhead: 5 * sim.Microsecond,
		SubmitOverhead: 3 * sim.Microsecond,
		MallocOverhead: 10 * sim.Microsecond,
	}
}

// FPGA models an FPGA accelerator card in the UltraShare mold: modest
// peak rates but fully deterministic kernel timing (the synthesized
// datapath runs at its pipelined rate regardless of problem shape, so
// FixedEff pins every kernel cost model to 1.0 of peak), negligible
// launch overhead once a bitstream is resident, and a large one-time
// reconfiguration latency charged on the first launch of each new
// kernel class. Only the dense linear-algebra kernel classes have
// synthesized bitstreams; anything else fails to launch.
func FPGA() Model {
	return Model{
		Name:            "fpga",
		Class:           "fpga",
		MemBytes:        4 * gib, // DDR3 on-card
		H2DPinned:       CopyModel{Overhead: 12 * sim.Microsecond, Bandwidth: 3200 * mib},
		H2DPageable:     CopyModel{Overhead: 14 * sim.Microsecond, Bandwidth: 2600 * mib},
		D2HPinned:       CopyModel{Overhead: 12 * sim.Microsecond, Bandwidth: 3100 * mib},
		D2HPageable:     CopyModel{Overhead: 14 * sim.Microsecond, Bandwidth: 2500 * mib},
		AsyncSetup:      3 * sim.Microsecond,
		PeakDP:          64e9,
		PeakSP:          128e9,
		MemBandwidth:    34e9,
		LaunchOverhead:  2 * sim.Microsecond,
		SubmitOverhead:  1 * sim.Microsecond,
		MallocOverhead:  10 * sim.Microsecond,
		FixedEff:        1.0,
		ReconfigLatency: 150 * sim.Millisecond,
		KernelClasses:   []string{"magma", "blas"},
	}
}
