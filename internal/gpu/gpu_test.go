package gpu

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"dynacc/internal/sim"
)

// testDevice builds a small execute-mode device with a fast test model.
func testDevice(t *testing.T, s *sim.Simulation, exec bool) *Device {
	t.Helper()
	m := TeslaC1060()
	m.MemBytes = 1 << 20 // 1 MiB keeps OOM paths testable
	d, err := NewDevice(s, Config{Model: m, Registry: NewRegistry(), Execute: exec})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

// inProc runs fn inside a single simulation process and completes the sim.
func inProc(t *testing.T, fn func(p *sim.Proc)) {
	t.Helper()
	s := sim.New()
	s.Spawn("test", fn)
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestModelValidate(t *testing.T) {
	if err := TeslaC1060().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := TeslaC1060()
	bad.PeakDP = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero peak accepted")
	}
	bad = TeslaC1060()
	bad.MemBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero memory accepted")
	}
	bad = TeslaC1060()
	bad.H2DPinned.Bandwidth = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero copy bandwidth accepted")
	}
}

func TestCopyModelTime(t *testing.T) {
	cm := CopyModel{Overhead: 10 * sim.Microsecond, Bandwidth: 1e9}
	if got := cm.Time(0); got != 10*sim.Microsecond {
		t.Errorf("Time(0) = %v", got)
	}
	if got := cm.Time(1000); got != 11*sim.Microsecond {
		t.Errorf("Time(1000) = %v", got)
	}
}

func TestC1060CalibrationAnchors(t *testing.T) {
	m := TeslaC1060()
	const n = 64 << 20
	// Paper Fig. 7: ~5700 MiB/s pinned, ~4700 MiB/s pageable H2D at 64 MiB.
	pinned := float64(n) / m.H2DPinned.Time(n).Seconds() / (1 << 20)
	pageable := float64(n) / m.H2DPageable.Time(n).Seconds() / (1 << 20)
	if pinned < 5600 || pinned > 5800 {
		t.Errorf("pinned H2D = %.0f MiB/s, want ~5700", pinned)
	}
	if pageable < 4600 || pageable > 4800 {
		t.Errorf("pageable H2D = %.0f MiB/s, want ~4700", pageable)
	}
	if m.PeakDP != 78e9 {
		t.Errorf("C1060 DP peak = %g", m.PeakDP)
	}
}

func TestAllocFreeRoundTrip(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, err := d.MemAlloc(p, 1000)
		if err != nil {
			t.Fatal(err)
		}
		if ptr.IsNull() {
			t.Fatal("null pointer from alloc")
		}
		if d.MemUsed() != 1024 { // rounded to 256
			t.Errorf("MemUsed = %d, want 1024", d.MemUsed())
		}
		if err := d.MemFree(p, ptr); err != nil {
			t.Fatal(err)
		}
		if d.MemUsed() != 0 {
			t.Errorf("MemUsed after free = %d", d.MemUsed())
		}
	})
}

func TestAllocOOMAndRecovery(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		big, err := d.MemAlloc(p, 900*1024)
		if err != nil {
			t.Fatal(err)
		}
		_, err = d.MemAlloc(p, 200*1024)
		if err == nil {
			t.Fatal("expected OOM")
		}
		if !IsOOM(err) {
			t.Fatalf("error is not OOM: %v", err)
		}
		if err := d.MemFree(p, big); err != nil {
			t.Fatal(err)
		}
		if _, err := d.MemAlloc(p, 200*1024); err != nil {
			t.Fatalf("alloc after free: %v", err)
		}
	})
}

func TestFreeInvalidPointer(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		if err := d.MemFree(p, Ptr(12345)); err == nil {
			t.Error("free of bogus pointer succeeded")
		}
		if err := d.MemFree(p, 0); err == nil {
			t.Error("free of null pointer succeeded")
		}
	})
}

func TestAllocRejectsNonPositive(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		if _, err := d.MemAlloc(p, 0); err == nil {
			t.Error("zero-size alloc succeeded")
		}
		if _, err := d.MemAlloc(p, -4); err == nil {
			t.Error("negative alloc succeeded")
		}
	})
}

func TestCoalescingAllowsFullReuse(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		var ptrs []Ptr
		for i := 0; i < 3; i++ {
			ptr, err := d.MemAlloc(p, 256*1024)
			if err != nil {
				t.Fatal(err)
			}
			ptrs = append(ptrs, ptr)
		}
		// Free out of order; the three regions must coalesce back into one
		// block big enough for a 768 KiB allocation.
		for _, i := range []int{1, 0, 2} {
			if err := d.MemFree(p, ptrs[i]); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := d.MemAlloc(p, 768*1024); err != nil {
			t.Fatalf("coalesced alloc failed: %v", err)
		}
	})
}

func TestCopyRoundTripExecuteMode(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, err := d.MemAlloc(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		src := make([]byte, 4096)
		for i := range src {
			src[i] = byte(i * 7)
		}
		if err := d.CopyH2D(p, ptr, 0, src, len(src), true); err != nil {
			t.Fatal(err)
		}
		dst := make([]byte, 4096)
		if err := d.CopyD2H(p, dst, ptr, 0, len(dst), true); err != nil {
			t.Fatal(err)
		}
		for i := range src {
			if dst[i] != src[i] {
				t.Fatalf("byte %d: got %d want %d", i, dst[i], src[i])
			}
		}
	})
}

func TestCopyWithOffsets(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, _ := d.MemAlloc(p, 1024)
		if err := d.CopyH2D(p, ptr, 100, []byte("abc"), 3, false); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 3)
		if err := d.CopyD2H(p, got, ptr, 100, 3, false); err != nil {
			t.Fatal(err)
		}
		if string(got) != "abc" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestCopyBoundsChecked(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, _ := d.MemAlloc(p, 256)
		if err := d.CopyH2D(p, ptr, 200, nil, 100, true); err == nil {
			t.Error("out-of-bounds H2D succeeded")
		}
		if err := d.CopyD2H(p, nil, ptr, 0, 999, true); err == nil {
			t.Error("out-of-bounds D2H succeeded")
		}
		if err := d.CopyH2D(p, Ptr(555), 0, nil, 1, true); err == nil {
			t.Error("copy to invalid pointer succeeded")
		}
		if err := d.CopyH2D(p, ptr, 0, []byte{1, 2}, 5, true); err == nil {
			t.Error("mismatched src length accepted")
		}
	})
}

func TestCopyTimingPinnedVsPageable(t *testing.T) {
	// Pinned copies must be faster than pageable for the same size, and
	// the charged time must equal the model's closed form.
	s := sim.New()
	d := testDevice(t, s, false)
	const n = 512 * 1024
	var tPinned, tPageable sim.Duration
	s.Spawn("test", func(p *sim.Proc) {
		ptr, _ := d.MemAlloc(p, n)
		start := p.Now()
		if err := d.CopyH2D(p, ptr, 0, nil, n, true); err != nil {
			t.Error(err)
		}
		tPinned = p.Now().Sub(start)
		start = p.Now()
		if err := d.CopyH2D(p, ptr, 0, nil, n, false); err != nil {
			t.Error(err)
		}
		tPageable = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if tPinned >= tPageable {
		t.Errorf("pinned %v not faster than pageable %v", tPinned, tPageable)
	}
	if want := d.Model().H2DPinned.Time(n); tPinned != want {
		t.Errorf("pinned copy took %v, model says %v", tPinned, want)
	}
}

func TestDMAEngineSerializesPinnedCopies(t *testing.T) {
	s := sim.New()
	d := testDevice(t, s, false)
	const n = 256 * 1024
	var done sim.Time
	var ptr Ptr
	s.Spawn("setup", func(p *sim.Proc) {
		ptr, _ = d.MemAlloc(p, n)
		for i := 0; i < 2; i++ {
			p.Spawn("copier", func(cp *sim.Proc) {
				if err := d.CopyH2D(cp, ptr, 0, nil, n, true); err != nil {
					t.Error(err)
				}
				if cp.Now() > done {
					done = cp.Now()
				}
			})
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	single := d.Model().H2DPinned.Time(n)
	if done.Sub(0) < 2*single {
		t.Errorf("two pinned copies finished at %v, want >= %v (serialized on DMA engine)", done, 2*single)
	}
}

func TestCopyD2D(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		a, _ := d.MemAlloc(p, 256)
		b, _ := d.MemAlloc(p, 256)
		if err := d.CopyH2D(p, a, 0, []byte("data!"), 5, true); err != nil {
			t.Fatal(err)
		}
		if err := d.CopyD2D(p, b, 10, a, 0, 5); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5)
		if err := d.CopyD2H(p, got, b, 10, 5, true); err != nil {
			t.Fatal(err)
		}
		if string(got) != "data!" {
			t.Fatalf("got %q", got)
		}
	})
}

func TestLaunchKernelExecutesAndCharges(t *testing.T) {
	s := sim.New()
	d := testDevice(t, s, true)
	d.Registry().Register(FuncKernel{
		KernelName: "scale",
		CostFn: func(l Launch, m Model) sim.Duration {
			return 50 * sim.Microsecond
		},
		ExecFn: func(l Launch, dev *Device) error {
			ptr := l.Arg(0).Ptr
			n := int(l.Arg(1).Int)
			f := l.Arg(2).F64
			vals, err := dev.ReadFloat64s(ptr, 0, n)
			if err != nil {
				return err
			}
			for i := range vals {
				vals[i] *= f
			}
			return dev.WriteFloat64s(ptr, 0, vals)
		},
	})
	var elapsed sim.Duration
	s.Spawn("test", func(p *sim.Proc) {
		ptr, _ := d.MemAlloc(p, 8*4)
		if err := d.WriteFloat64s(ptr, 0, []float64{1, 2, 3, 4}); err != nil {
			t.Error(err)
		}
		start := p.Now()
		err := d.LaunchKernel(p, "scale", Launch{
			Grid: Dim3{X: 1}, Block: Dim3{X: 4},
			Args: []Value{PtrArg(ptr), IntArg(4), FloatArg(2.5)},
		})
		if err != nil {
			t.Error(err)
		}
		elapsed = p.Now().Sub(start)
		got, _ := d.ReadFloat64s(ptr, 0, 4)
		want := []float64{2.5, 5, 7.5, 10}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("val[%d] = %v, want %v", i, got[i], want[i])
			}
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	want := d.Model().LaunchOverhead + 50*sim.Microsecond
	if elapsed != want {
		t.Errorf("launch took %v, want %v", elapsed, want)
	}
	if st := d.Stats(); st.Launches != 1 {
		t.Errorf("launches = %d", st.Launches)
	}
}

func TestLaunchUnknownKernel(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		err := d.LaunchKernel(p, "nope", Launch{})
		if err == nil || !strings.Contains(err.Error(), "unknown kernel") {
			t.Errorf("err = %v", err)
		}
	})
}

func TestKernelsSerializeOnComputeEngine(t *testing.T) {
	s := sim.New()
	d := testDevice(t, s, false)
	d.Registry().Register(FuncKernel{
		KernelName: "busy",
		CostFn:     func(Launch, Model) sim.Duration { return 100 * sim.Microsecond },
	})
	var last sim.Time
	for i := 0; i < 3; i++ {
		s.Spawn("launcher", func(p *sim.Proc) {
			if err := d.LaunchKernel(p, "busy", Launch{}); err != nil {
				t.Error(err)
			}
			if p.Now() > last {
				last = p.Now()
			}
		})
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	minTotal := 3 * (100*sim.Microsecond + d.Model().LaunchOverhead)
	if sim.Duration(last) < minTotal {
		t.Errorf("3 kernels done at %v, want >= %v (serialized)", last, minTotal)
	}
}

func TestModelModeRejectsDataAccess(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		ptr, _ := d.MemAlloc(p, 64)
		if _, err := d.ReadFloat64s(ptr, 0, 4); err == nil {
			t.Error("ReadFloat64s succeeded in model mode")
		}
		// Sized copies must still work and charge time.
		if err := d.CopyH2D(p, ptr, 0, nil, 64, true); err != nil {
			t.Errorf("sized copy failed: %v", err)
		}
	})
}

func TestDeviceStatsCountBytes(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		ptr, _ := d.MemAlloc(p, 1024)
		_ = d.CopyH2D(p, ptr, 0, nil, 1024, true)
		_ = d.CopyD2H(p, nil, ptr, 0, 512, false)
		st := d.Stats()
		if st.BytesIn != 1024 || st.BytesOut != 512 {
			t.Errorf("stats = %+v", st)
		}
	})
}

func TestValueStringAndArgPanic(t *testing.T) {
	for _, v := range []Value{PtrArg(16), IntArg(-3), FloatArg(2.5), {}} {
		if v.String() == "" {
			t.Error("empty String()")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Arg out of range did not panic")
		}
	}()
	Launch{}.Arg(0)
}

func TestDim3Count(t *testing.T) {
	if got := (Dim3{X: 4, Y: 2, Z: 3}).Count(); got != 24 {
		t.Errorf("Count = %d", got)
	}
	if got := (Dim3{}).Count(); got != 1 {
		t.Errorf("zero Dim3 Count = %d", got)
	}
	if got := (Dim3{X: 5}).Count(); got != 5 {
		t.Errorf("Count = %d", got)
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	r := NewRegistry()
	r.Register(FuncKernel{KernelName: "zeta"})
	r.Register(FuncKernel{KernelName: "alpha"})
	names := r.Names()
	if len(names) != 2 || names[0] != "alpha" || names[1] != "zeta" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := r.Lookup("alpha"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := r.Lookup("missing"); ok {
		t.Error("Lookup of missing kernel succeeded")
	}
}

// Property: the allocator never hands out overlapping regions and frees
// restore all capacity, for arbitrary alloc/free sequences.
func TestPropertyAllocatorNoOverlapFullRecovery(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := newAllocator(1<<20, false)
		type live struct {
			ptr  Ptr
			size uint64
		}
		var lives []live
		overlap := func(x live, y live) bool {
			return uint64(x.ptr) < uint64(y.ptr)+y.size && uint64(y.ptr) < uint64(x.ptr)+x.size
		}
		for op := 0; op < 100; op++ {
			if len(lives) == 0 || rng.Intn(2) == 0 {
				n := 1 + rng.Intn(64*1024)
				ptr, err := a.alloc(n)
				if err != nil {
					continue // OOM is legal
				}
				nl := live{ptr: ptr, size: roundUp(uint64(n))}
				for _, l := range lives {
					if overlap(nl, l) {
						return false
					}
				}
				lives = append(lives, nl)
			} else {
				i := rng.Intn(len(lives))
				if err := a.freePtr(lives[i].ptr); err != nil {
					return false
				}
				lives = append(lives[:i], lives[i+1:]...)
			}
		}
		for _, l := range lives {
			if err := a.freePtr(l.ptr); err != nil {
				return false
			}
		}
		// After freeing everything the allocator must satisfy a maximal
		// request again.
		_, err := a.alloc(1<<20 - allocAlign)
		return err == nil && a.used == roundUp(1<<20-allocAlign)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: H2D then D2H round-trips arbitrary payloads bit-exactly in
// execute mode.
func TestPropertyCopyRoundTrip(t *testing.T) {
	f := func(payload []byte) bool {
		if len(payload) == 0 {
			return true
		}
		if len(payload) > 32*1024 {
			payload = payload[:32*1024]
		}
		ok := true
		s := sim.New()
		m := TeslaC1060()
		m.MemBytes = 1 << 20
		d, err := NewDevice(s, Config{Model: m, Execute: true})
		if err != nil {
			return false
		}
		s.Spawn("rt", func(p *sim.Proc) {
			ptr, err := d.MemAlloc(p, len(payload))
			if err != nil {
				ok = false
				return
			}
			if err := d.CopyH2D(p, ptr, 0, payload, len(payload), true); err != nil {
				ok = false
				return
			}
			back := make([]byte, len(payload))
			if err := d.CopyD2H(p, back, ptr, 0, len(back), false); err != nil {
				ok = false
				return
			}
			for i := range back {
				if back[i] != payload[i] {
					ok = false
					return
				}
			}
		})
		return s.Run() == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestFaultingKernelReturnsError(t *testing.T) {
	s := sim.New()
	d := testDevice(t, s, true)
	d.Registry().Register(FuncKernel{
		KernelName: "bad-arity",
		ExecFn: func(l Launch, dev *Device) error {
			_ = l.Arg(5) // panics: launched without enough arguments
			return nil
		},
	})
	s.Spawn("test", func(p *sim.Proc) {
		err := d.LaunchKernel(p, "bad-arity", Launch{Grid: Dim3{X: 1}, Block: Dim3{X: 1}})
		if err == nil || !strings.Contains(err.Error(), "faulted") {
			t.Errorf("err = %v, want kernel fault", err)
		}
		// The device must stay usable afterwards.
		if _, err := d.MemAlloc(p, 64); err != nil {
			t.Errorf("device unusable after kernel fault: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestMemsetDevice(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, _ := d.MemAlloc(p, 256)
		if err := d.Memset(p, ptr, 0, 256, 0xAB); err != nil {
			t.Fatal(err)
		}
		if err := d.Memset(p, ptr, 64, 16, 0x01); err != nil {
			t.Fatal(err)
		}
		buf, err := d.Bytes(ptr, 0, 256)
		if err != nil {
			t.Fatal(err)
		}
		for i, b := range buf {
			want := byte(0xAB)
			if i >= 64 && i < 80 {
				want = 0x01
			}
			if b != want {
				t.Fatalf("byte %d = %#x, want %#x", i, b, want)
			}
		}
		if err := d.Memset(p, ptr, 200, 100, 0); err == nil {
			t.Error("out-of-range memset accepted")
		}
	})
}

func TestDeviceResetClearsEverything(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		p1, _ := d.MemAlloc(p, 1024)
		p2, _ := d.MemAlloc(p, 2048)
		d.Reset(p)
		if d.MemUsed() != 0 {
			t.Errorf("MemUsed = %d after reset", d.MemUsed())
		}
		if err := d.ValidRange(p1, 0, 1); err == nil {
			t.Error("stale pointer valid after reset")
		}
		if err := d.ValidRange(p2, 0, 1); err == nil {
			t.Error("stale pointer valid after reset")
		}
		// Full capacity available again.
		if _, err := d.MemAlloc(p, 1<<20-512); err != nil {
			t.Errorf("alloc after reset: %v", err)
		}
	})
}

func TestCopyEngineTransferTiming(t *testing.T) {
	s := sim.New()
	d := testDevice(t, s, false)
	var pinnedT, pioT sim.Duration
	s.Spawn("test", func(p *sim.Proc) {
		const n = 1 << 20
		start := p.Now()
		d.CopyEngineTransfer(p, n, true, true)
		pinnedT = p.Now().Sub(start)
		start = p.Now()
		d.CopyEngineTransfer(p, n, false, false)
		pioT = p.Now().Sub(start)
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if want := d.Model().H2DPinned.Time(1 << 20); pinnedT != want {
		t.Errorf("pinned engine transfer %v, want %v", pinnedT, want)
	}
	if want := d.Model().D2HPageable.Time(1 << 20); pioT != want {
		t.Errorf("pageable engine transfer %v, want %v", pioT, want)
	}
	st := d.Stats()
	if st.BytesIn != 1<<20 || st.BytesOut != 1<<20 {
		t.Errorf("stats after engine transfers: %+v", st)
	}
}

func TestScatterGatherColumnsDirect(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		ptr, _ := d.MemAlloc(p, 1024)
		packed := []byte("aaaabbbbcccc") // 3 columns of 4 bytes
		if err := d.ScatterColumns(ptr, 8, 4, 3, 32, packed); err != nil {
			t.Fatal(err)
		}
		got, err := d.GatherColumns(ptr, 8, 4, 3, 32)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(packed) {
			t.Errorf("gather = %q", got)
		}
		// Geometry and range validation.
		if err := d.ScatterColumns(ptr, 0, 8, 2, 4, nil); err == nil {
			t.Error("pitch < colBytes accepted")
		}
		if err := d.ScatterColumns(ptr, 1000, 64, 3, 64, nil); err == nil {
			t.Error("out-of-range scatter accepted")
		}
		if _, err := d.GatherColumns(ptr, 0, -1, 1, 1); err == nil {
			t.Error("negative colBytes accepted")
		}
		if err := d.ScatterColumns(ptr, 0, 4, 2, 8, []byte("xyz")); err == nil {
			t.Error("mismatched scatter payload accepted")
		}
		// Zero columns is a no-op.
		if err := d.ScatterColumns(ptr, 0, 4, 0, 8, nil); err != nil {
			t.Errorf("zero-column scatter: %v", err)
		}
	})
}

func TestModelModeScatterGatherSkipData(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), false)
		ptr, _ := d.MemAlloc(p, 256)
		if err := d.ScatterColumns(ptr, 0, 8, 2, 16, nil); err != nil {
			t.Errorf("model-mode scatter: %v", err)
		}
		data, err := d.GatherColumns(ptr, 0, 8, 2, 16)
		if err != nil || data != nil {
			t.Errorf("model-mode gather = %v, %v", data, err)
		}
	})
}

func TestDeviceAccessors(t *testing.T) {
	s := sim.New()
	d, err := NewDevice(s, Config{Name: "mygpu", Model: TeslaC1060(), Execute: true})
	if err != nil {
		t.Fatal(err)
	}
	if d.Name() != "mygpu" {
		t.Errorf("Name = %q", d.Name())
	}
	if !d.ExecuteMode() {
		t.Error("ExecuteMode false")
	}
	if d.AsyncSetupCost() != d.Model().AsyncSetup {
		t.Error("AsyncSetupCost mismatch")
	}
	// Default name falls back to the model name.
	d2, _ := NewDevice(s, Config{Model: TeslaC1060()})
	if d2.Name() != "tesla-c1060" {
		t.Errorf("default name = %q", d2.Name())
	}
	// OOM error message mentions the sizes.
	err = &oomError{want: 100, free: 50}
	if !strings.Contains(err.Error(), "100") || !strings.Contains(err.Error(), "50") {
		t.Errorf("oom message: %v", err)
	}
}

func TestStoreFloat64sHelper(t *testing.T) {
	raw := make([]byte, 24)
	StoreFloat64s(raw, []float64{1.5, -2, 3})
	got := bytesToF64(raw)
	if got[0] != 1.5 || got[1] != -2 || got[2] != 3 {
		t.Errorf("round trip = %v", got)
	}
}

func TestCopyD2DErrorPaths(t *testing.T) {
	inProc(t, func(p *sim.Proc) {
		d := testDevice(t, p.Sim(), true)
		a, _ := d.MemAlloc(p, 64)
		if err := d.CopyD2D(p, a, 0, Ptr(999), 0, 8); err == nil {
			t.Error("invalid src accepted")
		}
		if err := d.CopyD2D(p, Ptr(999), 0, a, 0, 8); err == nil {
			t.Error("invalid dst accepted")
		}
		if err := d.CopyD2D(p, a, 60, a, 0, 16); err == nil {
			t.Error("out-of-range dst accepted")
		}
	})
}
