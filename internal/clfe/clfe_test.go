package clfe

import (
	"bytes"
	"errors"
	"testing"

	"dynacc/internal/cluster"
	"dynacc/internal/core"
	"dynacc/internal/gpu"
	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
)

// withContext runs fn with an OpenCL-style context over one
// network-attached accelerator in execute mode.
func withContext(t *testing.T, fn func(p *sim.Proc, ctx *Context)) {
	t.Helper()
	reg := gpu.NewRegistry()
	reg.Register(gpu.FuncKernel{
		KernelName: "square",
		CostFn: func(l gpu.Launch, m gpu.Model) sim.Duration {
			return sim.Duration(float64(2*8*l.Arg(1).Int) / m.MemBandwidth * 1e9)
		},
		ExecFn: func(l gpu.Launch, dev *gpu.Device) error {
			ptr := l.Arg(0).Ptr
			n := int(l.Arg(1).Int)
			vals, err := dev.ReadFloat64s(ptr, 0, n)
			if err != nil {
				return err
			}
			for i := range vals {
				vals[i] *= vals[i]
			}
			return dev.WriteFloat64s(ptr, 0, vals)
		},
	})
	reg.Register(gpu.FuncKernel{
		KernelName: "slowkernel",
		CostFn:     func(gpu.Launch, gpu.Model) sim.Duration { return sim.Millisecond },
	})
	cl, err := cluster.New(cluster.Config{ComputeNodes: 1, Accelerators: 1, Registry: reg, Execute: true})
	if err != nil {
		t.Fatal(err)
	}
	cl.Spawn(0, func(p *sim.Proc, node *cluster.Node) {
		handles, err := node.ARM.Acquire(p, 1, false)
		if err != nil {
			t.Error(err)
			return
		}
		defer node.ARM.Release(p, handles)
		fn(p, NewContext(node.Attach(handles[0])))
	})
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestWriteKernelReadPipeline(t *testing.T) {
	withContext(t, func(p *sim.Proc, ctx *Context) {
		const n = 512
		buf, err := ctx.CreateBuffer(p, 8*n)
		if err != nil {
			t.Fatal(err)
		}
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = float64(i)
		}
		q := ctx.CreateQueue(0)
		if _, err := q.EnqueueWriteBuffer(buf, 0, minimpi.F64Bytes(vals), 8*n); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueNDRangeKernel("square", gpu.Dim3{X: n}, gpu.Dim3{X: 64}, buf, n); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 8*n)
		if _, err := q.EnqueueReadBuffer(buf, 0, out, 8*n); err != nil {
			t.Fatal(err)
		}
		// The in-order queue guarantees write -> kernel -> read ordering;
		// one Finish settles everything.
		if err := q.Finish(p); err != nil {
			t.Fatal(err)
		}
		got := minimpi.BytesF64(out)
		for i := range got {
			if got[i] != float64(i)*float64(i) {
				t.Fatalf("out[%d] = %v, want %v", i, got[i], float64(i)*float64(i))
			}
		}
		if err := buf.Release(p); err != nil {
			t.Fatal(err)
		}
	})
}

func TestQueuesOverlapLikeStreams(t *testing.T) {
	withContext(t, func(p *sim.Proc, ctx *Context) {
		buf, err := ctx.CreateBuffer(p, 1<<20)
		if err != nil {
			t.Fatal(err)
		}
		defer buf.Release(p)
		q0 := ctx.CreateQueue(0)
		q1 := ctx.CreateQueue(1)
		start := p.Now()
		if _, err := q0.EnqueueNDRangeKernel("slowkernel", gpu.Dim3{X: 1}, gpu.Dim3{X: 1}); err != nil {
			t.Fatal(err)
		}
		if _, err := q1.EnqueueWriteBuffer(buf, 0, nil, 1<<20); err != nil {
			t.Fatal(err)
		}
		if err := q0.Finish(p); err != nil {
			t.Fatal(err)
		}
		if err := q1.Finish(p); err != nil {
			t.Fatal(err)
		}
		if elapsed := p.Now().Sub(start); elapsed > 1600*sim.Microsecond {
			t.Errorf("queues did not overlap: %v", elapsed)
		}
	})
}

func TestEventWaitSettlesSingleCommand(t *testing.T) {
	withContext(t, func(p *sim.Proc, ctx *Context) {
		buf, _ := ctx.CreateBuffer(p, 4096)
		defer buf.Release(p)
		q := ctx.CreateQueue(0)
		payload := bytes.Repeat([]byte{9}, 4096)
		ev, err := q.EnqueueWriteBuffer(buf, 0, payload, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Wait(p); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 4096)
		ev, err = q.EnqueueReadBuffer(buf, 0, out, 4096)
		if err != nil {
			t.Fatal(err)
		}
		if err := ev.Wait(p); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, payload) {
			t.Error("payload mismatch")
		}
	})
}

func TestBufferErrorPaths(t *testing.T) {
	withContext(t, func(p *sim.Proc, ctx *Context) {
		buf, _ := ctx.CreateBuffer(p, 128)
		q := ctx.CreateQueue(0)
		if _, err := q.EnqueueWriteBuffer(buf, 100, nil, 64); err == nil {
			t.Error("out-of-range write accepted")
		}
		if _, err := q.EnqueueReadBuffer(buf, -1, nil, 4); err == nil {
			t.Error("negative offset accepted")
		}
		if err := buf.Release(p); err != nil {
			t.Fatal(err)
		}
		if err := buf.Release(p); err == nil {
			t.Error("double release accepted")
		}
		if _, err := q.EnqueueWriteBuffer(buf, 0, nil, 4); err == nil {
			t.Error("write to released buffer accepted")
		}
		if _, err := q.EnqueueNDRangeKernel("square", gpu.Dim3{X: 1}, gpu.Dim3{X: 1}, buf, 1); err == nil {
			t.Error("kernel arg with released buffer accepted")
		}
		if _, err := q.EnqueueNDRangeKernel("square", gpu.Dim3{X: 1}, gpu.Dim3{}, 1); err == nil {
			t.Error("empty local size accepted")
		}
		if _, err := q.EnqueueNDRangeKernel("square", gpu.Dim3{X: 1}, gpu.Dim3{X: 1}, "bogus"); err == nil {
			t.Error("unsupported arg type accepted")
		}
	})
}

func TestKernelArgKinds(t *testing.T) {
	v, err := KernelArg(7)
	if err != nil || v.Kind != gpu.KindInt || v.Int != 7 {
		t.Errorf("int arg: %+v %v", v, err)
	}
	v, err = KernelArg(int64(-2))
	if err != nil || v.Int != -2 {
		t.Errorf("int64 arg: %+v %v", v, err)
	}
	v, err = KernelArg(1.5)
	if err != nil || v.Kind != gpu.KindFloat || v.F64 != 1.5 {
		t.Errorf("float arg: %+v %v", v, err)
	}
}

func TestEnqueueFillBuffer(t *testing.T) {
	withContext(t, func(p *sim.Proc, ctx *Context) {
		buf, _ := ctx.CreateBuffer(p, 256)
		defer buf.Release(p)
		q := ctx.CreateQueue(0)
		if _, err := q.EnqueueFillBuffer(buf, 0x7A, 0, 256); err != nil {
			t.Fatal(err)
		}
		out := make([]byte, 256)
		if _, err := q.EnqueueReadBuffer(buf, 0, out, 256); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(p); err != nil {
			t.Fatal(err)
		}
		for i, b := range out {
			if b != 0x7A {
				t.Fatalf("byte %d = %#x", i, b)
			}
		}
		if _, err := q.EnqueueFillBuffer(buf, 0, 200, 100); err == nil {
			t.Error("out-of-range fill accepted")
		}
	})
}

// withBatchedContext is withContext with command batching enabled in the
// middleware, so Enqueue* calls record client-side until Flush/Finish.
func withBatchedContext(t *testing.T, fn func(p *sim.Proc, ctx *Context)) {
	t.Helper()
	reg := gpu.NewRegistry()
	reg.Register(gpu.FuncKernel{
		KernelName: "slowkernel",
		CostFn:     func(gpu.Launch, gpu.Model) sim.Duration { return sim.Millisecond },
	})
	opts := core.BatchedOptions()
	cl, err := cluster.New(cluster.Config{ComputeNodes: 1, Accelerators: 1, Registry: reg, Execute: true, Options: &opts})
	if err != nil {
		t.Fatal(err)
	}
	cl.Spawn(0, func(p *sim.Proc, node *cluster.Node) {
		handles, err := node.ARM.Acquire(p, 1, false)
		if err != nil {
			t.Error(err)
			return
		}
		defer node.ARM.Release(p, handles)
		fn(p, NewContext(node.Attach(handles[0])))
	})
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
}

// TestQueueFlushShipsOneWireMessage pins the clFlush contract: enqueued
// header-only commands stay client-side until Flush, which ships them as
// exactly one wire message; a second Flush finds nothing pending.
func TestQueueFlushShipsOneWireMessage(t *testing.T) {
	withBatchedContext(t, func(p *sim.Proc, ctx *Context) {
		q := ctx.CreateQueue(0)
		if err := q.Flush(); !errors.Is(err, ErrNothingPending) {
			t.Fatalf("flush of empty queue: got %v, want ErrNothingPending", err)
		}
		buf, err := ctx.CreateBuffer(p, 4096)
		if err != nil {
			t.Fatal(err)
		}
		defer buf.Release(p)
		comm := ctx.Accel().Client().Comm()
		before := comm.WireStats().Msgs
		if _, err := q.EnqueueFillBuffer(buf, 0x01, 0, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueFillBuffer(buf, 0x02, 0, 64); err != nil {
			t.Fatal(err)
		}
		if _, err := q.EnqueueNDRangeKernel("slowkernel", gpu.Dim3{X: 1}, gpu.Dim3{X: 1}); err != nil {
			t.Fatal(err)
		}
		if got := comm.WireStats().Msgs - before; got != 0 {
			t.Fatalf("%d messages posted before Flush, want 0 (commands must record client-side)", got)
		}
		if err := q.Flush(); err != nil {
			t.Fatalf("flush: %v", err)
		}
		if got := comm.WireStats().Msgs - before; got != 1 {
			t.Fatalf("Flush posted %d wire messages for 3 commands, want 1", got)
		}
		if err := q.Flush(); !errors.Is(err, ErrNothingPending) {
			t.Fatalf("second flush: got %v, want ErrNothingPending", err)
		}
		if err := q.Finish(p); err != nil {
			t.Fatal(err)
		}
		// In-order execution: the narrow fill overwrote the wide one.
		out := make([]byte, 4096)
		if _, err := q.EnqueueReadBuffer(buf, 0, out, 4096); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(p); err != nil {
			t.Fatal(err)
		}
		for i, b := range out {
			want := byte(0x01)
			if i < 64 {
				want = 0x02
			}
			if b != want {
				t.Fatalf("byte %d = %#x, want %#x", i, b, want)
			}
		}
	})
}

// TestFinishImpliesFlush: clFinish must submit the recorded buffer
// itself, without an explicit clFlush.
func TestFinishImpliesFlush(t *testing.T) {
	withBatchedContext(t, func(p *sim.Proc, ctx *Context) {
		buf, err := ctx.CreateBuffer(p, 256)
		if err != nil {
			t.Fatal(err)
		}
		defer buf.Release(p)
		q := ctx.CreateQueue(0)
		if _, err := q.EnqueueFillBuffer(buf, 0x5C, 0, 256); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(p); err != nil {
			t.Fatalf("finish with recorded commands: %v", err)
		}
		out := make([]byte, 256)
		if _, err := q.EnqueueReadBuffer(buf, 0, out, 256); err != nil {
			t.Fatal(err)
		}
		if err := q.Finish(p); err != nil {
			t.Fatal(err)
		}
		for i, b := range out {
			if b != 0x5C {
				t.Fatalf("byte %d = %#x after Finish-implied flush", i, b)
			}
		}
	})
}
