package clfe

import (
	"bytes"
	"testing"

	"dynacc/internal/cluster"
	"dynacc/internal/gpu"
	"dynacc/internal/sim"
)

// TestSessionContextsShareAccelerator runs two tenants' OpenCL-style
// contexts against one shared accelerator: each works in its own session
// namespace, and releasing one context frees only its buffers.
func TestSessionContextsShareAccelerator(t *testing.T) {
	reg := gpu.NewRegistry()
	reg.Register(gpu.FuncKernel{
		KernelName: "bump",
		CostFn:     func(gpu.Launch, gpu.Model) sim.Duration { return 10 * sim.Microsecond },
		ExecFn: func(l gpu.Launch, dev *gpu.Device) error {
			ptr := l.Arg(0).Ptr
			n := int(l.Arg(1).Int)
			vals, err := dev.ReadFloat64s(ptr, 0, n)
			if err != nil {
				return err
			}
			for i := range vals {
				vals[i]++
			}
			return dev.WriteFloat64s(ptr, 0, vals)
		},
	})
	cl, err := cluster.New(cluster.Config{
		ComputeNodes:  2,
		Accelerators:  1,
		Registry:      reg,
		Execute:       true,
		ShareCapacity: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	cl.SpawnAll(func(p *sim.Proc, node *cluster.Node) {
		handles, err := node.ARM.AcquireShared(p, 1, true)
		if err != nil {
			t.Errorf("cn%d shared acquire: %v", node.Rank, err)
			return
		}
		defer node.ARM.Release(p, handles)
		ctx, err := NewSessionContext(p, node.FE, handles[0].Rank)
		if err != nil {
			t.Errorf("cn%d session context: %v", node.Rank, err)
			return
		}
		defer ctx.Release(p)

		const n = 64
		buf, err := ctx.CreateBuffer(p, n*8)
		if err != nil {
			t.Errorf("cn%d buffer: %v", node.Rank, err)
			return
		}
		q := ctx.CreateQueue(uint8(1))
		host := make([]byte, n*8)
		for i := range host {
			host[i] = byte(node.Rank + 1)
		}
		if _, err := q.EnqueueWriteBuffer(buf, 0, host, len(host)); err != nil {
			t.Errorf("cn%d write: %v", node.Rank, err)
			return
		}
		got := make([]byte, n*8)
		if _, err := q.EnqueueReadBuffer(buf, 0, got, len(got)); err != nil {
			t.Errorf("cn%d read: %v", node.Rank, err)
			return
		}
		if err := q.Finish(p); err != nil {
			t.Errorf("cn%d finish: %v", node.Rank, err)
			return
		}
		if !bytes.Equal(got, host) {
			t.Errorf("cn%d read back foreign or corrupt data", node.Rank)
		}
	})
	if _, err := cl.Run(); err != nil {
		t.Fatal(err)
	}
	if used := cl.Daemons[0].Device().MemUsed(); used != 0 {
		t.Errorf("%d bytes leaked after both contexts released", used)
	}
}
