// Package clfe is an OpenCL-flavoured front-end over the dynacc
// middleware. The paper emphasizes that its software stack "is
// extensible to any accelerator programming interface and therefore not
// restricted to CUDA by design" (Section IV); this package demonstrates
// that claim: the same back-end daemons and copy protocols serve an
// OpenCL-style surface — contexts, buffers, in-order command queues with
// events — without any protocol change.
//
// The mapping is direct: a Context wraps one assigned accelerator, a
// Buffer is a device allocation, a CommandQueue is a middleware stream
// (in-order execution, queues overlap each other), and Enqueue* calls
// return Events that Finish or Event.Wait settle.
package clfe

import (
	"errors"
	"fmt"

	"dynacc/internal/core"
	"dynacc/internal/gpu"
	"dynacc/internal/sim"
)

// Context owns the buffers and queues of one accelerator.
type Context struct {
	ac *core.Accel
}

// NewContext wraps an assigned accelerator (clCreateContext).
func NewContext(ac *core.Accel) *Context {
	return &Context{ac: ac}
}

// NewSessionContext opens a session-scoped context on the daemon at
// daemonRank: the accelerator may be shared with other tenants (an
// arm.AcquireShared lease), and this context's buffers are namespaced,
// quota-checked (core.Options.SessionQuota), and sanitized on Release
// without touching the other tenants. The OpenCL analogy holds up —
// contexts are exactly OpenCL's isolation boundary.
func NewSessionContext(p *sim.Proc, c *core.Client, daemonRank int) (*Context, error) {
	ac, err := c.AttachSession(p, daemonRank)
	if err != nil {
		return nil, err
	}
	return &Context{ac: ac}, nil
}

// Release closes the context's session, freeing every allocation it
// still owns on the daemon (clReleaseContext). A no-op for contexts
// created over a plain attachment with NewContext.
func (c *Context) Release(p *sim.Proc) error {
	return c.ac.CloseSession(p)
}

// Accel exposes the underlying middleware handle.
func (c *Context) Accel() *core.Accel { return c.ac }

// Buffer is a device memory object (cl_mem).
type Buffer struct {
	ctx      *Context
	ptr      gpu.Ptr
	size     int
	released bool
}

// CreateBuffer allocates size bytes on the device (clCreateBuffer).
func (c *Context) CreateBuffer(p *sim.Proc, size int) (*Buffer, error) {
	ptr, err := c.ac.MemAlloc(p, size)
	if err != nil {
		return nil, err
	}
	return &Buffer{ctx: c, ptr: ptr, size: size}, nil
}

// Size returns the buffer capacity in bytes.
func (b *Buffer) Size() int { return b.size }

// Release frees the device memory (clReleaseMemObject). Double release
// is an error, as in OpenCL.
func (b *Buffer) Release(p *sim.Proc) error {
	if b.released {
		return fmt.Errorf("clfe: buffer already released")
	}
	b.released = true
	return b.ctx.ac.MemFree(p, b.ptr)
}

// Event tracks one enqueued command (cl_event).
type Event struct {
	pd *core.Pending
}

// Wait blocks until the command completes (clWaitForEvents).
func (e *Event) Wait(p *sim.Proc) error { return e.pd.Wait(p) }

// CommandQueue is an in-order queue bound to one middleware stream
// (clCreateCommandQueue). Distinct queues execute concurrently on the
// accelerator, exactly like OpenCL queues on separate streams.
type CommandQueue struct {
	ctx    *Context
	stream uint8
	events []*Event
}

// CreateQueue creates an in-order command queue on the given stream id.
func (c *Context) CreateQueue(stream uint8) *CommandQueue {
	return &CommandQueue{ctx: c, stream: stream}
}

func (q *CommandQueue) track(pd *core.Pending) *Event {
	e := &Event{pd: pd}
	q.events = append(q.events, e)
	return e
}

// EnqueueWriteBuffer copies host data into the buffer at offset
// (clEnqueueWriteBuffer, non-blocking). data may be nil in model mode
// with the size given by n.
func (q *CommandQueue) EnqueueWriteBuffer(b *Buffer, offset int, data []byte, n int) (*Event, error) {
	if err := q.checkRange(b, offset, n); err != nil {
		return nil, err
	}
	return q.track(q.ctx.ac.MemcpyH2DAsync(b.ptr, offset, data, n, q.stream)), nil
}

// EnqueueFillBuffer fills the buffer range with a byte pattern
// (clEnqueueFillBuffer with a 1-byte pattern).
func (q *CommandQueue) EnqueueFillBuffer(b *Buffer, value byte, offset, n int) (*Event, error) {
	if err := q.checkRange(b, offset, n); err != nil {
		return nil, err
	}
	return q.track(q.ctx.ac.MemsetAsync(b.ptr, offset, n, value, q.stream)), nil
}

// EnqueueReadBuffer copies the buffer range into dst
// (clEnqueueReadBuffer, non-blocking).
func (q *CommandQueue) EnqueueReadBuffer(b *Buffer, offset int, dst []byte, n int) (*Event, error) {
	if err := q.checkRange(b, offset, n); err != nil {
		return nil, err
	}
	return q.track(q.ctx.ac.MemcpyD2HAsync(dst, b.ptr, offset, n, q.stream)), nil
}

func (q *CommandQueue) checkRange(b *Buffer, offset, n int) error {
	if b.released {
		return fmt.Errorf("clfe: buffer already released")
	}
	if b.ctx != q.ctx {
		return fmt.Errorf("clfe: buffer belongs to a different context")
	}
	if offset < 0 || n < 0 || offset+n > b.size {
		return fmt.Errorf("clfe: range [%d,%d) outside buffer of %d bytes", offset, offset+n, b.size)
	}
	return nil
}

// KernelArg builds kernel arguments; buffers pass their device pointer.
func KernelArg(v any) (gpu.Value, error) {
	switch x := v.(type) {
	case *Buffer:
		if x.released {
			return gpu.Value{}, fmt.Errorf("clfe: kernel argument uses a released buffer")
		}
		return gpu.PtrArg(x.ptr), nil
	case int:
		return gpu.IntArg(int64(x)), nil
	case int64:
		return gpu.IntArg(x), nil
	case float64:
		return gpu.FloatArg(x), nil
	default:
		return gpu.Value{}, fmt.Errorf("clfe: unsupported kernel argument type %T", v)
	}
}

// EnqueueNDRangeKernel launches a named kernel with a global/local work
// size (clEnqueueNDRangeKernel, non-blocking). The global size is
// rounded up to whole work groups, as OpenCL requires it divisible.
func (q *CommandQueue) EnqueueNDRangeKernel(name string, global, local gpu.Dim3, args ...any) (*Event, error) {
	if local.X < 1 {
		return nil, fmt.Errorf("clfe: local work size must be at least 1, got %+v", local)
	}
	vals := make([]gpu.Value, 0, len(args))
	for _, a := range args {
		v, err := KernelArg(a)
		if err != nil {
			return nil, err
		}
		vals = append(vals, v)
	}
	grid := gpu.Dim3{
		X: ceil(global.X, max1(local.X)),
		Y: ceil(global.Y, max1(local.Y)),
		Z: ceil(global.Z, max1(local.Z)),
	}
	k := q.ctx.ac.KernelCreate(name).SetArgs(vals...)
	return q.track(k.RunAsync(grid, local, q.stream)), nil
}

// ErrNothingPending reports a Flush that found no recorded commands to
// submit: either every enqueued command already shipped, or the
// middleware runs without batching and submits eagerly.
var ErrNothingPending = errors.New("clfe: flush: nothing pending")

// Flush submits the queue's recorded command buffer to the accelerator
// (clFlush): with command batching on (core.Options.BatchOps) the
// Enqueue* calls record commands client-side, and Flush ships them as
// one wire message. It returns ErrNothingPending when there was nothing
// to submit.
func (q *CommandQueue) Flush() error {
	if q.ctx.ac.Flush(q.stream) == nil {
		return ErrNothingPending
	}
	return nil
}

// Finish blocks until every command enqueued on this queue has completed
// and returns the first error (clFinish). Recorded commands are flushed
// first, as clFinish implies clFlush.
func (q *CommandQueue) Finish(p *sim.Proc) error {
	q.ctx.ac.Flush(q.stream)
	var first error
	for _, e := range q.events {
		if err := e.Wait(p); err != nil && first == nil {
			first = err
		}
	}
	q.events = q.events[:0]
	return first
}

func ceil(a, b int) int {
	if a <= 0 {
		return 1
	}
	return (a + b - 1) / b
}

func max1(v int) int {
	if v < 1 {
		return 1
	}
	return v
}
