package arm

// directory.go is the shard directory: the small piece of shared
// metadata that maps an accelerator id to the MPI rank currently serving
// its shard. Servers use it to forward requests to the owning peer;
// clients use it to pick a home shard and to re-resolve after a shard
// leader dies and its follower is promoted. In the simulator the
// directory is a single in-memory object shared by every participant
// (the moral equivalent of the paper's cluster frontend), so a promotion
// becomes visible to all clients at their next lookup — there is no
// directory replication protocol to model.

// Directory tracks, per shard, the leader rank, the optional follower
// rank, which of the two is currently serving, and the shard's
// leadership epoch. Epochs start at 1 and are bumped on every
// promotion; they are the fencing tokens the rest of the system carries
// (DESIGN.md §12): a server that observes an epoch above its own for
// its shard knows it has been deposed, and a daemon that observes an
// epoch above a request's token knows the requester's lease is stale.
type Directory struct {
	ring      *Ring
	leaders   []int
	followers []int // -1 when the shard has no replica
	serving   []int // leaders[i] until Promote(i)
	promoted  []bool
	epochs    []uint64 // leadership epoch per shard, starts at 1
}

// NewDirectory builds a directory over ring with the given leader ranks.
// followers may be nil (no replication) or must match len(leaders); a
// follower rank of -1 marks an unreplicated shard.
func NewDirectory(ring *Ring, leaders, followers []int) *Directory {
	if len(leaders) != ring.Shards() {
		panic("arm: directory leader count does not match ring shards")
	}
	if followers != nil && len(followers) != len(leaders) {
		panic("arm: directory follower count does not match leaders")
	}
	d := &Directory{
		ring:      ring,
		leaders:   leaders,
		followers: followers,
		serving:   make([]int, len(leaders)),
		promoted:  make([]bool, len(leaders)),
		epochs:    make([]uint64, len(leaders)),
	}
	for i := range d.epochs {
		d.epochs[i] = 1
	}
	if d.followers == nil {
		d.followers = make([]int, len(leaders))
		for i := range d.followers {
			d.followers[i] = -1
		}
	}
	copy(d.serving, leaders)
	return d
}

// Shards returns the shard count.
func (d *Directory) Shards() int { return len(d.leaders) }

// Ring returns the ownership ring.
func (d *Directory) Ring() *Ring { return d.ring }

// OwnerOf returns the shard index owning accelerator id. Allocation-free.
func (d *Directory) OwnerOf(id int) int { return d.ring.Owner(id) }

// RankFor returns the rank currently serving accelerator id's shard.
// Allocation-free: this is the client-side routing hot path.
func (d *Directory) RankFor(id int) int { return d.serving[d.ring.Owner(id)] }

// Leader returns shard's leader rank.
func (d *Directory) Leader(shard int) int { return d.leaders[shard] }

// Follower returns shard's follower rank, or -1.
func (d *Directory) Follower(shard int) int { return d.followers[shard] }

// Serving returns the rank currently serving shard.
func (d *Directory) Serving(shard int) int { return d.serving[shard] }

// Promoted reports whether shard has failed over to its follower.
func (d *Directory) Promoted(shard int) bool { return d.promoted[shard] }

// Epoch returns shard's current leadership epoch (1 until the first
// promotion, strictly increasing after).
func (d *Directory) Epoch(shard int) uint64 { return d.epochs[shard] }

// Promote switches shard's serving rank to its follower and mints the
// next leadership epoch. Idempotent in who serves but not in the epoch:
// every successful call bumps it, keeping the sequence strictly
// monotonic no matter how promotions interleave with partitions.
// Returns false if the shard has no follower to promote.
func (d *Directory) Promote(shard int) bool {
	if d.followers[shard] < 0 {
		return false
	}
	d.serving[shard] = d.followers[shard]
	d.promoted[shard] = true
	d.epochs[shard]++
	return true
}

// ShardOf returns the shard index whose serving rank is rank, or -1.
func (d *Directory) ShardOf(rank int) int {
	for i, r := range d.serving {
		if r == rank {
			return i
		}
	}
	return -1
}
