package arm

// capability.go makes the ARM inventory capability-aware (ISSUE 9
// tentpole): accelerators carry a Capability descriptor (device class
// plus supported kernel classes), acquires can carry a Constraint, and
// placement becomes match-constraint-to-device then least-loaded within
// the matching set. Everything here is gated on the server's `classed`
// flag — true only when at least one inventory entry carries a non-zero
// capability — so a homogeneous, descriptor-less fleet (every default
// path) sends and receives exactly the bytes it did before capabilities
// existed.

import (
	"sort"

	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Capability is the placement-relevant summary of one accelerator: its
// device class and the kernel classes it can run. The ARM matches
// acquire constraints against it and migrates resident state only
// between compatible devices; it deliberately carries no performance
// numbers (those live in gpu.Capability, which the cluster keeps on the
// client side).
type Capability struct {
	// Class names the device family ("c1060", "fermi", "fpga"); devices
	// of one class are interchangeable.
	Class string
	// Kernels lists the kernel classes the device supports; empty means
	// it runs everything (a general-purpose GPU).
	Kernels []string
}

// IsZero reports an absent descriptor (a legacy, untagged accelerator).
func (c Capability) IsZero() bool { return c.Class == "" && len(c.Kernels) == 0 }

// Supports reports whether the capability covers the given kernel
// class; an empty Kernels list supports everything.
func (c Capability) Supports(kernelClass string) bool {
	if len(c.Kernels) == 0 {
		return true
	}
	for _, k := range c.Kernels {
		if k == kernelClass {
			return true
		}
	}
	return false
}

// CanHost reports whether a device with capability c can host resident
// state produced on a device with capability src: it must support every
// kernel class src supports. A restricted device (non-empty Kernels)
// can therefore never host state from a run-everything GPU — this is
// what keeps a C1060's resident state off the FPGA.
func (c Capability) CanHost(src Capability) bool {
	if len(c.Kernels) == 0 {
		return true
	}
	if len(src.Kernels) == 0 {
		return false
	}
	for _, k := range src.Kernels {
		if !c.Supports(k) {
			return false
		}
	}
	return true
}

// Constraint restricts an acquire to capable devices. Zero means any
// device (the legacy behavior); both fields may be set at once.
type Constraint struct {
	// Class, when non-empty, requires devices of exactly this class.
	Class string
	// Kernel, when non-empty, requires devices supporting this kernel
	// class.
	Kernel string
}

// IsZero reports the unconstrained (legacy) request.
func (c Constraint) IsZero() bool { return c.Class == "" && c.Kernel == "" }

// Matches reports whether a device with the given capability satisfies
// the constraint.
func (c Constraint) Matches(cap Capability) bool {
	if c.Class != "" && c.Class != cap.Class {
		return false
	}
	if c.Kernel != "" && !cap.Supports(c.Kernel) {
		return false
	}
	return true
}

// Wire encoding: Str(Class) Int(len(Kernels)) Str(kernel)... for a
// capability, Str(Class) Str(Kernel) for a constraint. Both appear only
// in the new opAcquireCapable encoding, as an optional opRegister
// trailer, and in classed-only sections of gossip/replication/statsEx —
// never in legacy traffic.

func encodeCapability(w *wire.Writer, c Capability) {
	w.Str(c.Class)
	w.Int(len(c.Kernels))
	for _, k := range c.Kernels {
		w.Str(k)
	}
}

func decodeCapability(r *wire.Reader) Capability {
	c := Capability{Class: r.Str()}
	n := r.Int()
	if r.Err() != nil || n < 0 || n > 1<<16 {
		return Capability{}
	}
	for i := 0; i < n; i++ {
		c.Kernels = append(c.Kernels, r.Str())
	}
	return c
}

func encodeConstraint(w *wire.Writer, c Constraint) {
	w.Str(c.Class).Str(c.Kernel)
}

func decodeConstraint(r *wire.Reader) Constraint {
	return Constraint{Class: r.Str(), Kernel: r.Str()}
}

// updateClassed recomputes whether any inventory entry carries a
// capability descriptor. While false, every classed-only wire section
// and placement filter stays dormant and the server is byte-identical
// to the pre-capability ARM.
func (s *Server) updateClassed() {
	s.classed = false
	for _, a := range s.accels {
		if !a.cap.IsZero() {
			s.classed = true
			return
		}
	}
}

// eligible reports whether accelerator a satisfies the request's
// constraint (always true for the unconstrained legacy request).
func (s *Server) eligible(a *accel, c Constraint) bool {
	return c.IsZero() || c.Matches(a.cap)
}

// freeCountFor counts free accelerators satisfying the constraint.
func (s *Server) freeCountFor(c Constraint) int {
	n := 0
	for _, a := range s.accels {
		if a.state == acFree && s.eligible(a, c) {
			n++
		}
	}
	return n
}

// operationalFor counts operational accelerators satisfying the
// constraint (same exclusions as operational: failed and retired).
func (s *Server) operationalFor(c Constraint) int {
	n := 0
	for _, a := range s.accels {
		if a.state != acFailed && a.state != acRetired && s.eligible(a, c) {
			n++
		}
	}
	return n
}

// sharedAvailableFor counts accelerators that could take a new sharer
// for src and satisfy the constraint.
func (s *Server) sharedAvailableFor(src int, c Constraint) int {
	n := 0
	for _, a := range s.accels {
		if s.sharedGrantable(a, src) && s.eligible(a, c) {
			n++
		}
	}
	return n
}

// exhaustedStatus is the status for a request exceeding its ceiling: a
// constrained request that the live inventory can never satisfy gets
// the typed statusNoCapable instead of the generic statusImpossible, so
// clients receive ErrNoCapableDevice rather than blocking forever or
// misreading the refusal as pool exhaustion.
func exhaustedStatus(req *pendingAcquire) uint8 {
	if !req.constraint.IsZero() {
		return statusNoCapable
	}
	return statusImpossible
}

// migrationTarget picks the free spare that should receive old's
// resident state: same-class spares first (a byte-for-byte compatible
// device), then any capability-compatible one (CanHost), pool order
// within each preference group. Nil when no compatible spare is free.
func (s *Server) migrationTarget(old *accel) *accel {
	var compat *accel
	for _, a := range s.accels {
		if a == old || a.state != acFree || !a.cap.CanHost(old.cap) {
			continue
		}
		if a.cap.Class == old.cap.Class {
			return a
		}
		if compat == nil {
			compat = a
		}
	}
	return compat
}

// grantOne grants one specific free accelerator to src exclusively,
// replying in the one-handle acquire shape. The classed migrate/replace
// paths use it to honor the same-class-first preference that the
// pool-order scan inside grant() cannot express.
func (s *Server) grantOne(a *accel, src int, reqID uint64) {
	now := s.now()
	s.accrue(now)
	var lease sim.Time
	if s.healthOn && s.health.LeaseTTL > 0 {
		lease = now.Add(s.health.LeaseTTL)
	}
	w := wire.NewWriter(24)
	w.Int(1)
	a.state = acAssigned
	a.owner = src
	a.notified = false
	a.lease = lease
	a.grants++
	s.logGrant(a, src, false)
	w.Int(a.id).Int(a.rank)
	s.acquireCount++
	s.reply(src, reqID, statusOK, w.Bytes())
}

// classLoads summarizes the local inventory per class for gossip:
// sorted class names with free and operational counts.
func (s *Server) classLoads() (names []string, free, oper map[string]int) {
	free = make(map[string]int)
	oper = make(map[string]int)
	for _, a := range s.accels {
		if a.state == acFailed || a.state == acRetired {
			continue
		}
		cl := a.cap.Class
		oper[cl]++
		if a.state == acFree {
			free[cl]++
		}
	}
	names = make([]string, 0, len(oper))
	for cl := range oper {
		names = append(names, cl)
	}
	sort.Strings(names)
	return names, free, oper
}

// clusterOperationalFor estimates the cluster-wide operational count
// for a constrained request from the local pool plus the per-class
// gossip. A kernel-only constraint cannot be evaluated remotely (gossip
// carries device classes, not kernel tables), so it conservatively
// counts every peer accelerator — the cost is an "unavailable" retry
// instead of a wrong "no capable device".
func (s *Server) clusterOperationalFor(c Constraint) int {
	if c.IsZero() {
		return s.clusterOperational()
	}
	n := s.operationalFor(c)
	for sh := range s.peerOper {
		if sh == s.shard {
			continue
		}
		if c.Class != "" {
			if m := s.peerClassOper[sh]; m != nil {
				n += m[c.Class]
			}
		} else {
			n += s.peerOper[sh]
		}
	}
	return n
}
