package arm

// Allocation regression tests for the shard-routing hot path. Every
// request a sharded client issues runs ring lookup + directory
// resolution, and releases additionally group handles per shard; a
// stray allocation there multiplies across the fleet benchmark's
// hundreds of thousands of operations, so the steady state is pinned at
// zero.

import (
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// TestRingOwnerAllocFree pins the consistent-hash lookup: a binary
// search over pre-sorted points, no closures, no boxing.
func TestRingOwnerAllocFree(t *testing.T) {
	r := NewRing(5)
	id := 0
	lookup := func() {
		if sh := r.Owner(id); sh < 0 || sh >= 5 {
			t.Fatalf("owner %d out of range", sh)
		}
		id++
	}
	if avg := testing.AllocsPerRun(1000, lookup); avg != 0 {
		t.Errorf("Ring.Owner allocates %.2f per lookup, want 0", avg)
	}
}

// TestDirectoryRankForAllocFree pins id → serving-rank resolution, the
// per-request routing step (including after a promotion flips a shard).
func TestDirectoryRankForAllocFree(t *testing.T) {
	dir := NewDirectory(NewRing(4), []int{10, 11, 12, 13}, []int{20, 21, 22, 23})
	dir.Promote(2)
	id := 0
	resolve := func() {
		if rank := dir.RankFor(id); rank < 10 {
			t.Fatalf("rank %d", rank)
		}
		id++
	}
	if avg := testing.AllocsPerRun(1000, resolve); avg != 0 {
		t.Errorf("Directory.RankFor allocates %.2f per lookup, want 0", avg)
	}
}

// TestRouteIDsAllocFree pins the release-batch routing: grouping a
// handle batch by owning shard reuses the client's scratch slices, so
// steady state (after the first calls size them) is allocation-free.
func TestRouteIDsAllocFree(t *testing.T) {
	s := sim.New()
	w, err := minimpi.NewWorld(s, 4, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(NewRing(3), []int{1, 2, 3}, nil)
	sc := NewShardedClient(w.Comm(0), dir)
	handles := make([]Handle, 16)
	for i := range handles {
		handles[i] = Handle{ID: i, Rank: 100 + i}
	}
	route := func() {
		groups := sc.routeIDs(handles)
		n := 0
		for _, g := range groups {
			n += len(g)
		}
		if n != len(handles) {
			t.Fatalf("routed %d of %d ids", n, len(handles))
		}
	}
	route() // size the scratch slices
	if avg := testing.AllocsPerRun(1000, route); avg != 0 {
		t.Errorf("routeIDs allocates %.2f per batch, want 0", avg)
	}
}
