package arm

// Heterogeneous-fleet regression tests (PR 9): capability-constrained
// acquire routing, the typed ErrNoCapableDevice in both blocking modes,
// class-aware migration preference (same model before merely
// compatible; a C1060's resident state never lands on the FPGA),
// randomized placement invariants, and golden wire vectors — the new
// capability encodings pinned byte-exact, and the constraint-less
// opAcquire/opRegister request frames pinned unchanged so homogeneous
// clusters keep their historical traffic.

import (
	"encoding/hex"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Capability fixtures matching the gpu package's registered models.
func capC1060() Capability { return Capability{Class: "c1060"} }
func capFermi() Capability { return Capability{Class: "fermi"} }
func capFPGA() Capability {
	return Capability{Class: "fpga", Kernels: []string{"magma", "blas"}}
}

// capPool is the pool harness with a capability-tagged inventory.
func capPool(t *testing.T, inv []Handle, nCN int, policy Policy, client func(p *sim.Proc, c *Client, rank int)) {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, nCN+1, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := NewServer(w.Comm(0), inv, policy)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("arm", srv.Run)
	var procs []*sim.Proc
	for r := 1; r <= nCN; r++ {
		r := r
		procs = append(procs, s.Spawn(fmt.Sprintf("cn%d", r), func(p *sim.Proc) {
			client(p, NewClient(w.Comm(r), 0), r)
		}))
	}
	s.Spawn("closer", func(p *sim.Proc) {
		for _, cp := range procs {
			cp.Done().Await(p)
		}
		if err := NewClient(w.Comm(1), 0).Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// mixedInventory is two C1060s, one Fermi, one FPGA card.
func mixedInventory() []Handle {
	return []Handle{
		{ID: 0, Rank: 100, Cap: capC1060()},
		{ID: 1, Rank: 101, Cap: capC1060()},
		{ID: 2, Rank: 102, Cap: capFermi()},
		{ID: 3, Rank: 103, Cap: capFPGA()},
	}
}

func TestAcquireCapableRoutesByClass(t *testing.T) {
	capPool(t, mixedInventory(), 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		hs, err := c.AcquireCapable(p, 1, false, Constraint{Class: "fermi"})
		if err != nil {
			t.Fatalf("acquire fermi: %v", err)
		}
		if hs[0].ID != 2 || hs[0].Cap.Class != "fermi" {
			t.Errorf("fermi constraint granted %+v", hs[0])
		}
		// A kernel-class constraint the FPGA cannot serve must land on a
		// run-everything GPU even with the FPGA free.
		hs2, err := c.AcquireCapable(p, 1, false, Constraint{Kernel: "mp2c"})
		if err != nil {
			t.Fatalf("acquire mp2c-capable: %v", err)
		}
		if hs2[0].Cap.Class == "fpga" {
			t.Errorf("mp2c constraint granted the FPGA: %+v", hs2[0])
		}
		// With both C1060s and the Fermi held... release and drain the
		// c1060 class instead: constrained counts must be per class.
		if err := c.Release(p, append(hs, hs2...)); err != nil {
			t.Fatal(err)
		}
		both, err := c.AcquireCapable(p, 2, false, Constraint{Class: "c1060"})
		if err != nil || len(both) != 2 {
			t.Fatalf("acquire 2 c1060: %v (%d)", err, len(both))
		}
		if _, err := c.AcquireCapable(p, 1, false, Constraint{Class: "c1060"}); !errors.Is(err, ErrUnavailable) {
			t.Errorf("exhausted class gave %v, want ErrUnavailable", err)
		}
		if err := c.Release(p, both); err != nil {
			t.Fatal(err)
		}
	})
}

func TestAcquireCapableNoCapableDevice(t *testing.T) {
	capPool(t, mixedInventory(), 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		// Non-blocking: a class the fleet does not have.
		if _, err := c.AcquireCapable(p, 1, false, Constraint{Class: "cell"}); !errors.Is(err, ErrNoCapableDevice) {
			t.Errorf("non-blocking unknown class gave %v, want ErrNoCapableDevice", err)
		}
		// Blocking: must fail immediately too — waiting for hardware the
		// fleet will never have would hang forever.
		if _, err := c.AcquireCapable(p, 1, true, Constraint{Class: "cell"}); !errors.Is(err, ErrNoCapableDevice) {
			t.Errorf("blocking unknown class gave %v, want ErrNoCapableDevice", err)
		}
		// Asking for more devices of a class than exist is equally
		// unsatisfiable.
		if _, err := c.AcquireCapable(p, 2, true, Constraint{Class: "fermi"}); !errors.Is(err, ErrNoCapableDevice) {
			t.Errorf("oversized class request gave %v, want ErrNoCapableDevice", err)
		}
		// An unconstrained capable acquire degrades to plain semantics:
		// oversized requests stay ErrImpossible.
		if _, err := c.AcquireCapable(p, 9, false, Constraint{}); !errors.Is(err, ErrImpossible) {
			t.Errorf("oversized unconstrained gave %v, want ErrImpossible", err)
		}
	})
}

// TestMigratePrefersSameClassSpare: a held Fermi migrates onto the free
// Fermi spare even though a compatible C1060 has the lower id.
func TestMigratePrefersSameClassSpare(t *testing.T) {
	inv := []Handle{
		{ID: 0, Rank: 100, Cap: capFermi()},
		{ID: 1, Rank: 101, Cap: capC1060()},
		{ID: 2, Rank: 102, Cap: capFermi()},
	}
	capPool(t, inv, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		hs, err := c.AcquireCapable(p, 1, false, Constraint{Class: "fermi"})
		if err != nil || hs[0].ID != 0 {
			t.Fatalf("acquire: %v %+v", err, hs)
		}
		h, err := c.Migrate(p, hs[0].Rank)
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
		if h.ID != 2 {
			t.Errorf("migrated to id %d, want the same-class spare 2", h.ID)
		}
		if err := c.Release(p, []Handle{h}); err != nil {
			t.Fatal(err)
		}
	})
}

// TestMigrateNeverLandsOnFPGA: with only the FPGA free, a C1060 holder
// keeps limping on its suspect device rather than moving general GPU
// state onto a bitstream-limited card.
func TestMigrateNeverLandsOnFPGA(t *testing.T) {
	inv := []Handle{
		{ID: 0, Rank: 100, Cap: capC1060()},
		{ID: 1, Rank: 101, Cap: capFPGA()},
	}
	capPool(t, inv, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		hs, err := c.AcquireCapable(p, 1, false, Constraint{Class: "c1060"})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Migrate(p, hs[0].Rank); !errors.Is(err, ErrUnavailable) {
			t.Errorf("migrate onto FPGA gave %v, want ErrUnavailable", err)
		}
		// The old assignment must survive the refusal.
		if err := c.Release(p, hs); err != nil {
			t.Errorf("release after refused migrate: %v", err)
		}
	})
}

// TestPropertyCapabilityPlacement (testing/quick): over random class
// assignments and hold patterns, the pure placement helpers agree with
// brute force — eligible implies the constraint matches, per-class free
// counts are exact, and migration targets are compatible with same-class
// preferred.
func TestPropertyCapabilityPlacement(t *testing.T) {
	caps := []Capability{capC1060(), capFermi(), capFPGA(), {}}
	classes := []string{"", "c1060", "fermi", "fpga", "cell"}
	kernels := []string{"", "magma", "blas", "mp2c"}
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		s := sim.New()
		w, err := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
		if err != nil {
			t.Fatal(err)
		}
		n := 2 + rng.Intn(6)
		inv := make([]Handle, n)
		for i := range inv {
			inv[i] = Handle{ID: i, Rank: 100 + i, Cap: caps[rng.Intn(len(caps))]}
		}
		srv, err := NewServer(w.Comm(1), inv, FIFO)
		if err != nil {
			t.Fatal(err)
		}
		for _, a := range srv.accels {
			if rng.Intn(2) == 1 {
				a.state = acAssigned
				a.owner = 3
			}
		}
		c := Constraint{Class: classes[rng.Intn(len(classes))], Kernel: kernels[rng.Intn(len(kernels))]}
		wantFree := 0
		for _, a := range srv.accels {
			if srv.eligible(a, c) != c.Matches(a.cap) {
				t.Errorf("eligible disagrees with Matches for cap %+v constraint %+v", a.cap, c)
				return false
			}
			if a.state == acFree && c.Matches(a.cap) {
				wantFree++
			}
		}
		if got := srv.freeCountFor(c); got != wantFree {
			t.Errorf("freeCountFor(%+v) = %d, want %d", c, got, wantFree)
			return false
		}
		for _, old := range srv.accels {
			if old.state != acAssigned {
				continue
			}
			target := srv.migrationTarget(old)
			sameClassFree := false
			anyCompatFree := false
			for _, a := range srv.accels {
				if a.state != acFree {
					continue
				}
				if a.cap.Class == old.cap.Class {
					sameClassFree = true
				}
				if a.cap.CanHost(old.cap) {
					anyCompatFree = true
				}
			}
			switch {
			case target == nil:
				if sameClassFree || anyCompatFree {
					t.Errorf("no target despite compatible spare (old %+v)", old.cap)
					return false
				}
			case target.state != acFree:
				t.Errorf("migration target not free")
				return false
			case sameClassFree && target.cap.Class != old.cap.Class:
				t.Errorf("target class %q despite free same-class spare for %q", target.cap.Class, old.cap.Class)
				return false
			case !sameClassFree && !target.cap.CanHost(old.cap):
				t.Errorf("incompatible migration target %+v for %+v", target.cap, old.cap)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// ---- Golden wire vectors ----

const (
	// encodeCapability({fpga, [magma blas]}).
	goldenCapabilityHex = "0400000066706761" /* Str "fpga" */ +
		"0200000000000000" /* 2 kernel classes */ +
		"050000006d61676d61" /* "magma" */ +
		"04000000626c6173" /* "blas" */

	// encodeConstraint({Class: "fermi", Kernel: "magma"}).
	goldenConstraintHex = "050000006665726d69" + "050000006d61676d61"

	// Full request frames as the client puts them on the wire (first
	// request, reqID 1).
	goldenAcquireReqHex = "01" /* opAcquire */ + "0100000000000000" /* reqID */ +
		"0200000000000000" /* n=2 */ + "00" /* non-blocking */
	goldenRegisterReqHex = "0e" /* opRegister */ + "0100000000000000" +
		"0700000000000000" /* id=7 */ + "6b00000000000000" /* rank=107 */
	goldenAcquireCapableReqHex = "14" /* opAcquireCapable */ + "0100000000000000" +
		"0100000000000000" /* n=1 */ + "01" /* blocking */ +
		goldenConstraintHex
)

func TestGoldenCapabilityEncoding(t *testing.T) {
	w := wire.NewWriter(64)
	encodeCapability(w, capFPGA())
	if got := hex.EncodeToString(w.Bytes()); got != goldenCapabilityHex {
		t.Errorf("capability encoding drifted:\n got  %s\n want %s", got, goldenCapabilityHex)
	}
	r := wire.NewReader(w.Bytes())
	back := decodeCapability(r)
	if back.Class != "fpga" || len(back.Kernels) != 2 || back.Kernels[0] != "magma" || back.Kernels[1] != "blas" {
		t.Errorf("capability round trip: %+v", back)
	}

	w2 := wire.NewWriter(32)
	encodeConstraint(w2, Constraint{Class: "fermi", Kernel: "magma"})
	if got := hex.EncodeToString(w2.Bytes()); got != goldenConstraintHex {
		t.Errorf("constraint encoding drifted:\n got  %s\n want %s", got, goldenConstraintHex)
	}
}

// captureRequest runs one client call against a scripted responder and
// returns the raw request bytes the client sent.
func captureRequest(t *testing.T, status uint8, body []byte, do func(p *sim.Proc, c *Client)) []byte {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	var got []byte
	s.Spawn("responder", func(p *sim.Proc) {
		data, _ := w.Comm(1).Recv(p, minimpi.AnySource, TagRequest)
		got = append([]byte(nil), data...)
		r := wire.NewReader(data)
		r.U8()
		reqID := r.U64()
		reply := wire.NewWriter(16 + len(body))
		reply.U8(status).Blob(body)
		w.Comm(1).Isend(0, tagReplyBase+minimpi.Tag(reqID), reply.Bytes())
	})
	s.Spawn("client", func(p *sim.Proc) { do(p, NewClient(w.Comm(0), 1)) })
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	return got
}

// TestGoldenRequestFrames pins the constraint-less opAcquire and
// opRegister frames to their pre-heterogeneity bytes — a homogeneous
// cluster's wire traffic must not change — and the new opAcquireCapable
// frame to its golden vector.
func TestGoldenRequestFrames(t *testing.T) {
	emptyGrant := wire.NewWriter(8).Int(0).Bytes()
	acq := captureRequest(t, statusOK, emptyGrant, func(p *sim.Proc, c *Client) {
		if _, err := c.Acquire(p, 2, false); err != nil {
			t.Errorf("acquire: %v", err)
		}
	})
	if got := hex.EncodeToString(acq); got != goldenAcquireReqHex {
		t.Errorf("opAcquire frame drifted:\n got  %s\n want %s", got, goldenAcquireReqHex)
	}

	reg := captureRequest(t, statusOK, nil, func(p *sim.Proc, c *Client) {
		if err := c.Register(p, 7, 107); err != nil {
			t.Errorf("register: %v", err)
		}
	})
	if got := hex.EncodeToString(reg); got != goldenRegisterReqHex {
		t.Errorf("opRegister frame drifted:\n got  %s\n want %s", got, goldenRegisterReqHex)
	}

	// RegisterCapable with a zero capability degrades to the exact
	// legacy Register bytes.
	regZero := captureRequest(t, statusOK, nil, func(p *sim.Proc, c *Client) {
		if err := c.RegisterCapable(p, 7, 107, Capability{}); err != nil {
			t.Errorf("register capable: %v", err)
		}
	})
	if got := hex.EncodeToString(regZero); got != goldenRegisterReqHex {
		t.Errorf("zero-capability RegisterCapable frame drifted:\n got  %s\n want %s", got, goldenRegisterReqHex)
	}

	capReq := captureRequest(t, statusOK, emptyGrant, func(p *sim.Proc, c *Client) {
		if _, err := c.AcquireCapable(p, 1, true, Constraint{Class: "fermi", Kernel: "magma"}); err != nil {
			t.Errorf("acquire capable: %v", err)
		}
	})
	if got := hex.EncodeToString(capReq); got != goldenAcquireCapableReqHex {
		t.Errorf("opAcquireCapable frame drifted:\n got  %s\n want %s", got, goldenAcquireCapableReqHex)
	}
}
