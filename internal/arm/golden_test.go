package arm

// golden_test.go pins the opStats and opStatsEx reply encodings to
// byte-exact golden vectors. The sharded ARM aggregates these payloads
// client-side, and external tooling (acbench's figure output) parses
// them, so the wire layout must never drift — a failure here means a
// protocol break, not a test to update casually.

import (
	"encoding/hex"
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// goldenServer hand-builds a server with every statistic non-zero and
// every lifecycle state represented, without running the simulation (so
// no timing integrals muddy the bytes).
func goldenServer(t *testing.T) *Server {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	inv := []Handle{
		{ID: 0, Rank: 100}, {ID: 1, Rank: 101}, {ID: 2, Rank: 102},
		{ID: 3, Rank: 103}, {ID: 4, Rank: 104}, {ID: 5, Rank: 105},
	}
	srv, err := NewServer(w.Comm(1), inv, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	srv.acquireCount = 7
	srv.releaseCount = 5
	srv.reclaimedCount = 2
	srv.migrateCount = 1
	srv.busySeconds = 1.5
	srv.waitSeconds = 0.25

	a := srv.byID[0]
	a.state = acAssigned
	a.owner = 3
	a.grants = 4
	a.busySeconds = 0.5
	a.waitSeconds = 0.125

	sh := srv.byID[1]
	sh.state = acShared
	sh.sharers = map[int]sim.Time{5: 0, 6: 0}
	sh.grants = 3
	sh.busySeconds = 0.75

	srv.byID[2].state = acFailed
	srv.byID[3].state = acSuspect
	srv.byID[4].state = acRetired
	return srv
}

const goldenStatsHex = "0600000000000000" /* Total=6 */ +
	"0100000000000000" /* Free=1 */ +
	"0200000000000000" /* Assigned=2 (one exclusive + one shared) */ +
	"0100000000000000" /* Failed=1 */ +
	"0000000000000000" /* Queued=0 */ +
	"0700000000000000" /* Acquires=7 */ +
	"0500000000000000" /* Releases=5 */ +
	"000000000000f83f" /* BusySeconds=1.5 */ +
	"000000000000d03f" /* WaitSeconds=0.25 */ +
	"0100000000000000" /* Suspect=1 */ +
	"0100000000000000" /* Retired=1 */ +
	"0200000000000000" /* Reclaimed=2 */ +
	"0100000000000000" /* Migrations=1 */

// Each opStatsEx row is id, rank, state string, holders, grants,
// busySeconds, waitSeconds for one accelerator.
const goldenStatsExHex = goldenStatsHex +
	"0100000000000000" /* Shared=1 */ +
	"0200000000000000" /* Sessions=2 */ +
	"0600000000000000" /* row count */ +
	"000000000000000064000000000000000800000061737369676e656401000000000000000400000000000000000000000000e03f000000000000c03f" /* assigned */ +
	"010000000000000065000000000000000600000073686172656402000000000000000300000000000000000000000000e83f0000000000000000" /* shared */ +
	"02000000000000006600000000000000060000006661696c65640000000000000000000000000000000000000000000000000000000000000000" /* failed */ +
	"0300000000000000670000000000000007000000737573706563740000000000000000000000000000000000000000000000000000000000000000" /* suspect */ +
	"0400000000000000680000000000000007000000726574697265640000000000000000000000000000000000000000000000000000000000000000" /* retired */ +
	"0500000000000000690000000000000004000000667265650000000000000000000000000000000000000000000000000000000000000000" /* free */

func TestGoldenStatsEncoding(t *testing.T) {
	srv := goldenServer(t)
	got := hex.EncodeToString(srv.encodeStats(0))
	if got != goldenStatsHex {
		t.Errorf("opStats encoding drifted:\n got  %s\n want %s", got, goldenStatsHex)
	}
}

func TestGoldenStatsExEncoding(t *testing.T) {
	srv := goldenServer(t)
	got := hex.EncodeToString(srv.encodeStatsEx(0))
	if got != goldenStatsExHex {
		t.Errorf("opStatsEx encoding drifted:\n got  %s\n want %s", got, goldenStatsExHex)
	}
}

// TestGoldenStatsRoundTrip guards the decoder against the same vectors:
// the golden bytes must decode to the exact hand-built state.
func TestGoldenStatsRoundTrip(t *testing.T) {
	body, err := hex.DecodeString(goldenStatsExHex)
	if err != nil {
		t.Fatal(err)
	}
	st, err := decodeStatsEx(body)
	if err != nil {
		t.Fatal(err)
	}
	if st.Total != 6 || st.Free != 1 || st.Assigned != 2 || st.Failed != 1 ||
		st.Suspect != 1 || st.Retired != 1 || st.Shared != 1 || st.Sessions != 2 {
		t.Errorf("decoded summary: %+v", st)
	}
	if st.Acquires != 7 || st.Releases != 5 || st.Reclaimed != 2 || st.Migrations != 1 {
		t.Errorf("decoded counters: %+v", st)
	}
	if st.BusySeconds != 1.5 || st.WaitSeconds != 0.25 {
		t.Errorf("decoded integrals: %+v", st)
	}
	if len(st.PerAccel) != 6 {
		t.Fatalf("decoded %d per-accel rows", len(st.PerAccel))
	}
	a0 := st.PerAccel[0]
	if a0.ID != 0 || a0.Rank != 100 || a0.State != "assigned" || a0.Sessions != 1 ||
		a0.Grants != 4 || a0.BusySeconds != 0.5 || a0.WaitSeconds != 0.125 {
		t.Errorf("decoded accel 0: %+v", a0)
	}
	a1 := st.PerAccel[1]
	if a1.ID != 1 || a1.State != "shared" || a1.Sessions != 2 || a1.Grants != 3 {
		t.Errorf("decoded accel 1: %+v", a1)
	}
}
