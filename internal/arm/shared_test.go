package arm

// Shared-lease (multi-tenant) behavior: capacity enforcement, least-
// loaded spread, exclusive/shared mutual exclusion, FIFO fairness across
// mixed request kinds, and the extended per-accelerator stats.

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// poolOpts is pool with full server options (sharing capacity).
func poolOpts(t *testing.T, nAC, nCN int, opts Options, client func(p *sim.Proc, c *Client, rank int)) {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, nCN+1, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	var inventory []Handle
	for i := 0; i < nAC; i++ {
		inventory = append(inventory, Handle{ID: i, Rank: 100 + i})
	}
	srv, err := NewServerOpts(w.Comm(0), inventory, opts)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("arm", srv.Run)
	var procs []*sim.Proc
	for r := 1; r <= nCN; r++ {
		r := r
		procs = append(procs, s.Spawn(fmt.Sprintf("cn%d", r), func(p *sim.Proc) {
			client(p, NewClient(w.Comm(r), 0), r)
		}))
	}
	s.Spawn("closer", func(p *sim.Proc) {
		for _, cp := range procs {
			cp.Done().Await(p)
		}
		if err := NewClient(w.Comm(1), 0).Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestSharedDisabledByDefault(t *testing.T) {
	pool(t, 2, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		if _, err := c.AcquireShared(p, 1, false); !errors.Is(err, ErrBadRequest) {
			t.Errorf("AcquireShared without ShareCapacity: %v, want ErrBadRequest", err)
		}
		// Exclusive behavior is untouched.
		hs, err := c.Acquire(p, 2, false)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if err := c.Release(p, hs); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
}

func TestNegativeShareCapacityRejected(t *testing.T) {
	s := sim.New()
	w, err := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewServerOpts(w.Comm(0), nil, Options{ShareCapacity: -1}); err == nil {
		t.Fatal("negative ShareCapacity accepted")
	}
}

// TestSharedSpreadCapacityAndStats drives one tenant across a two-
// accelerator pool: leases spread least-loaded, a tenant never holds two
// leases on one accelerator, and StatsEx reports the sharing state.
func TestSharedSpreadCapacityAndStats(t *testing.T) {
	poolOpts(t, 2, 1, Options{ShareCapacity: 2}, func(p *sim.Proc, c *Client, rank int) {
		h1, err := c.AcquireShared(p, 1, false)
		if err != nil {
			t.Fatalf("first shared acquire: %v", err)
		}
		if len(h1) != 1 || !h1[0].Shared {
			t.Fatalf("handles %+v, want one shared handle", h1)
		}
		h2, err := c.AcquireShared(p, 1, false)
		if err != nil {
			t.Fatalf("second shared acquire: %v", err)
		}
		if h2[0].ID == h1[0].ID {
			t.Errorf("both leases landed on accel %d; want least-loaded spread", h1[0].ID)
		}
		// One lease per tenant per accelerator: both accels already carry
		// this client, so a third lease is impossible for it (only its own
		// releases could make room — blocking would deadlock), and a
		// 3-wide request can never be satisfied either.
		if _, err := c.AcquireShared(p, 1, false); !errors.Is(err, ErrImpossible) {
			t.Errorf("third lease: %v, want ErrImpossible", err)
		}
		if _, err := c.AcquireShared(p, 3, true); !errors.Is(err, ErrImpossible) {
			t.Errorf("3-wide shared acquire on 2 accels: %v, want ErrImpossible", err)
		}
		p.Wait(2 * sim.Millisecond) // accrue some busy time

		st, err := c.StatsEx(p)
		if err != nil {
			t.Fatalf("statsex: %v", err)
		}
		if st.Shared != 2 || st.Sessions != 2 {
			t.Errorf("Shared=%d Sessions=%d, want 2/2", st.Shared, st.Sessions)
		}
		// Legacy partition: shared accels count as assigned.
		if st.Assigned != 2 || st.Free != 0 || st.Total != 2 {
			t.Errorf("legacy partition %+v", st)
		}
		if len(st.PerAccel) != 2 {
			t.Fatalf("PerAccel has %d entries", len(st.PerAccel))
		}
		for _, as := range st.PerAccel {
			if as.State != "shared" || as.Sessions != 1 || as.Grants != 1 {
				t.Errorf("accel %d: %+v, want shared/1 session/1 grant", as.ID, as)
			}
			if as.BusySeconds <= 0 {
				t.Errorf("accel %d busy %v, want > 0", as.ID, as.BusySeconds)
			}
		}
		// The plain Stats reply must not know about sharing (layout pin).
		lst, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if lst.Shared != 0 || lst.Sessions != 0 || lst.PerAccel != nil {
			t.Errorf("legacy Stats leaked sharing fields: %+v", lst)
		}

		if err := c.Release(p, h1); err != nil {
			t.Fatalf("release h1: %v", err)
		}
		st, err = c.StatsEx(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Shared != 1 || st.Free != 1 {
			t.Errorf("after release: %+v, want 1 shared 1 free", st)
		}
		if err := c.Release(p, h2); err != nil {
			t.Fatalf("release h2: %v", err)
		}
	})
}

// TestSharedCapacityAcrossTenants fills one accelerator to ShareCapacity
// with distinct tenants and verifies the next tenant blocks until a
// sharer leaves.
func TestSharedCapacityAcrossTenants(t *testing.T) {
	var grantedAt sim.Time
	poolOpts(t, 1, 3, Options{ShareCapacity: 2}, func(p *sim.Proc, c *Client, rank int) {
		p.Wait(sim.Duration(rank) * 100 * sim.Microsecond)
		switch rank {
		case 1, 2:
			hs, err := c.AcquireShared(p, 1, false)
			if err != nil {
				t.Errorf("rank %d shared acquire: %v", rank, err)
				return
			}
			// Rank 1 leaves at 5ms, making room for rank 3; rank 2 stays
			// until 8ms.
			hold := 5 * sim.Millisecond
			if rank == 2 {
				hold = 8 * sim.Millisecond
			}
			p.Wait(hold)
			if err := c.Release(p, hs); err != nil {
				t.Errorf("rank %d release: %v", rank, err)
			}
		case 3:
			// Capacity 2 is full: non-blocking fails, blocking waits for
			// rank 1's release.
			if _, err := c.AcquireShared(p, 1, false); !errors.Is(err, ErrUnavailable) {
				t.Errorf("over-capacity acquire: %v, want ErrUnavailable", err)
			}
			hs, err := c.AcquireShared(p, 1, true)
			if err != nil {
				t.Errorf("blocking shared acquire: %v", err)
				return
			}
			grantedAt = sim.Time(p.Sim().Now())
			if err := c.Release(p, hs); err != nil {
				t.Errorf("rank 3 release: %v", err)
			}
		}
	})
	if grantedAt < sim.Time(5*sim.Millisecond) {
		t.Errorf("third tenant granted at %v, before any sharer released", grantedAt)
	}
}

// TestSharedExclusiveMutualExclusion: an accelerator under shared leases
// is not exclusively grantable and vice versa.
func TestSharedExclusiveMutualExclusion(t *testing.T) {
	poolOpts(t, 1, 2, Options{ShareCapacity: 4}, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			hs, err := c.AcquireShared(p, 1, false)
			if err != nil {
				t.Errorf("shared acquire: %v", err)
				return
			}
			p.Wait(2 * sim.Millisecond)
			if err := c.Release(p, hs); err != nil {
				t.Errorf("release: %v", err)
				return
			}
			p.Wait(2 * sim.Millisecond)
			// Now rank 2 holds it exclusively: no shared lease fits.
			if _, err := c.AcquireShared(p, 1, false); !errors.Is(err, ErrUnavailable) {
				t.Errorf("shared acquire on exclusive accel: %v, want ErrUnavailable", err)
			}
		case 2:
			p.Wait(sim.Millisecond)
			// Rank 1 shares the only accel: exclusive must wait.
			if _, err := c.Acquire(p, 1, false); !errors.Is(err, ErrUnavailable) {
				t.Errorf("exclusive acquire on shared accel: %v, want ErrUnavailable", err)
			}
			hs, err := c.Acquire(p, 1, true) // granted once rank 1 releases
			if err != nil {
				t.Errorf("blocking exclusive acquire: %v", err)
				return
			}
			p.Wait(4 * sim.Millisecond)
			if err := c.Release(p, hs); err != nil {
				t.Errorf("release: %v", err)
			}
		}
	})
}

// TestSharedReleaseValidation: a tenant cannot release a shared
// accelerator it has no lease on, and the failed attempt changes nothing.
func TestSharedReleaseValidation(t *testing.T) {
	poolOpts(t, 1, 2, Options{ShareCapacity: 2}, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			hs, err := c.AcquireShared(p, 1, false)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			p.Wait(3 * sim.Millisecond)
			if err := c.Release(p, hs); err != nil {
				t.Errorf("owner release after foreign attempt: %v", err)
			}
		case 2:
			p.Wait(sim.Millisecond)
			if err := c.Release(p, []Handle{{ID: 0, Rank: 100}}); !errors.Is(err, ErrBadRequest) {
				t.Errorf("foreign release: %v, want ErrBadRequest", err)
			}
			st, err := c.StatsEx(p)
			if err != nil {
				t.Error(err)
				return
			}
			if st.Sessions != 1 {
				t.Errorf("foreign release changed the books: %+v", st)
			}
		}
	})
}

// TestPropertySharedExclusiveFIFO is the grant-fairness property: under
// the FIFO policy, any mix of pending shared and exclusive acquires is
// granted strictly in arrival order, and every request is eventually
// granted (no starvation).
func TestPropertySharedExclusiveFIFO(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCN := 3 + rng.Intn(5)
		shared := make([]bool, nCN)
		for i := range shared {
			shared[i] = rng.Intn(2) == 0
		}
		delays := rng.Perm(nCN)
		var order []int
		ok := true
		poolOpts(t, 2, nCN, Options{Policy: FIFO, ShareCapacity: 2}, func(p *sim.Proc, c *Client, rank int) {
			d := delays[rank-1]
			p.Wait(sim.Duration(d+1) * sim.Millisecond)
			var hs []Handle
			var err error
			if shared[rank-1] {
				hs, err = c.AcquireShared(p, 1, true)
			} else {
				hs, err = c.Acquire(p, 1, true)
			}
			if err != nil {
				t.Errorf("rank %d (shared=%v): %v", rank, shared[rank-1], err)
				ok = false
				return
			}
			order = append(order, d)
			p.Wait(500 * sim.Microsecond)
			if err := c.Release(p, hs); err != nil {
				t.Errorf("rank %d release: %v", rank, err)
				ok = false
			}
		})
		if len(order) != nCN {
			t.Errorf("seed %d: %d of %d requests granted (starvation)", seed, len(order), nCN)
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Errorf("seed %d: FIFO violated across kinds %v: grant order %v", seed, shared, order)
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
