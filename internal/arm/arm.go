// Package arm implements the paper's Accelerator Resource Manager: the
// service that tracks which network-attached accelerators are free or in
// use and assigns them exclusively to compute nodes on request.
//
// The ARM runs as one rank of a minimpi world and is driven entirely by
// messages, as in the paper's architecture (Figure 3): compute nodes use
// the resource-management API (the Client type) to acquire accelerators
// before or during a job and release them afterwards; every assignment is
// exclusive and is represented by a Handle the computation API uses to
// address the accelerator's back-end daemon.
//
// Both assignment strategies of the paper are supported: static (acquire
// before the compute phase, hold for the job lifetime) and dynamic
// (acquire and release at runtime, with optional blocking until
// accelerators free up). The paper defers the dynamic strategy to future
// work; here it is fully implemented, including FIFO and backfill
// queueing policies and accelerator failure handling (the paper's fault
// tolerance claim: a broken accelerator never takes a compute node down).
//
// On top of the passive bookkeeping sits an optional health subsystem
// (ConfigureHealth): daemons heartbeat the ARM, a threshold failure
// detector on the virtual clock marks silent nodes suspect and then
// dead, assignments become leases that expire when their holder stops
// renewing, and reclaimed accelerators are sanitized before re-entering
// the free pool. See health.go.
package arm

import (
	"errors"
	"fmt"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Handle is an exclusive assignment of one accelerator: its pool id and
// the world rank its back-end daemon listens on.
type Handle struct {
	ID   int
	Rank int
}

// Control-plane tags. TagRequest carries client→ARM requests; replies use
// tagReplyBase plus the client's request sequence number, so delayed
// (blocking) replies never collide. TagNotify carries unsolicited
// ARM→client health notices (see Notice).
const (
	TagRequest   minimpi.Tag = 1 << 20
	tagReplyBase minimpi.Tag = TagRequest + 1
	TagNotify    minimpi.Tag = TagRequest - 1
)

// Request op codes.
const (
	opAcquire uint8 = iota + 1
	opRelease
	opStats
	opFail
	opRepair
	opShutdown
	opReplace
	// Health subsystem (PR 2).
	opHeartbeat // daemon→ARM liveness beat; no reply
	opRenew     // explicit lease renewal
	opMigrate   // swap a suspect assignment for a spare
	opDrain     // retire an accelerator gracefully
)

// Reply status codes.
const (
	statusOK uint8 = iota
	statusUnavailable
	statusImpossible
	statusBadRequest
)

// Errors returned by the client API.
var (
	// ErrUnavailable: a non-blocking acquire found too few free
	// accelerators.
	ErrUnavailable = errors.New("arm: not enough free accelerators")
	// ErrImpossible: the request exceeds the number of operational
	// accelerators and can never be satisfied.
	ErrImpossible = errors.New("arm: request exceeds operational pool size")
	// ErrBadRequest: malformed or inconsistent request (e.g. releasing a
	// handle the caller does not own).
	ErrBadRequest = errors.New("arm: bad request")
)

// Policy selects how queued (blocking) acquires are granted.
type Policy int

// Queueing policies.
const (
	// FIFO grants strictly in arrival order; a large request at the head
	// blocks later smaller ones.
	FIFO Policy = iota
	// Backfill lets a later request proceed when the head request cannot
	// yet be satisfied but the later one can (improves utilization at the
	// cost of possible head starvation).
	Backfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PoolStats is a snapshot of the ARM's bookkeeping.
type PoolStats struct {
	Total    int
	Free     int
	Assigned int
	Failed   int
	// Suspect counts accelerators out of the free pool because their
	// daemon went silent (including those being sanitized after a
	// reclaim); Retired counts accelerators drained out of service.
	Suspect int
	Retired int
	Queued  int
	// Acquires and Releases count completed operations.
	Acquires int
	Releases int
	// Reclaimed counts leases the ARM revoked (expiry or forced drain);
	// Migrations counts suspect assignments swapped for a spare.
	Reclaimed  int
	Migrations int
	// BusySeconds integrates assigned-accelerator time: one accelerator
	// assigned for one virtual second contributes 1.0.
	BusySeconds float64
	// WaitSeconds integrates time acquire requests spent queued.
	WaitSeconds float64
}

// Utilization returns the mean fraction of the pool assigned over the
// elapsed virtual time.
func (ps PoolStats) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 || ps.Total == 0 {
		return 0
	}
	return ps.BusySeconds / (elapsed.Seconds() * float64(ps.Total))
}

type acState int

const (
	acFree acState = iota
	acAssigned
	acFailed
	// acSuspect: the daemon stopped heartbeating (or the accelerator was
	// migrated away from); unowned and not grantable, but may recover.
	acSuspect
	// acReclaiming: a revoked lease's accelerator while its daemon-side
	// sanitize (device reset) is in flight.
	acReclaiming
	// acRetired: drained out of service; only an administrative repair
	// brings it back.
	acRetired
)

// drainWait remembers the requester of a pending opDrain so the reply can
// be sent once the accelerator actually retires.
type drainWait struct {
	src   int
	reqID uint64
}

type accel struct {
	id    int
	rank  int
	state acState
	owner int // world rank of owner while assigned

	// Health bookkeeping (unused while the subsystem is off).
	lease    sim.Time   // assignment expires when now passes this (0 = no lease)
	dirty    bool       // device may hold residue; sanitize before re-granting
	draining bool       // retire instead of freeing on next un-assignment
	notified bool       // owner has been sent a suspect notice
	drainer  *drainWait // pending opDrain reply
}

type pendingAcquire struct {
	src      int // communicator rank of requester
	reqID    uint64
	n        int
	enqueued sim.Time
}

// Server is the ARM service state machine.
type Server struct {
	comm   *minimpi.Comm
	sim    *sim.Simulation
	policy Policy

	accels []*accel // pool order = grant order (lowest id first)
	byID   map[int]*accel
	queue  []*pendingAcquire

	// Health subsystem (health.go); healthOn only after ConfigureHealth.
	health    HealthConfig
	healthOn  bool
	sanitizer func(p *sim.Proc, rank int) error
	lastBeat  map[int]sim.Time // daemon rank → last heartbeat arrival
	closed    bool             // stops the detector tick after shutdown

	// accounting
	lastChange     sim.Time
	assignedNow    int
	busySeconds    float64
	waitSeconds    float64
	acquireCount   int
	releaseCount   int
	reclaimedCount int
	migrateCount   int
}

// NewServer creates an ARM serving the given accelerator inventory on the
// communicator. Inventory ids must be unique.
func NewServer(comm *minimpi.Comm, inventory []Handle, policy Policy) (*Server, error) {
	s := &Server{
		comm:   comm,
		sim:    comm.World().Sim(),
		policy: policy,
		byID:   make(map[int]*accel),
	}
	for _, h := range inventory {
		if _, dup := s.byID[h.ID]; dup {
			return nil, fmt.Errorf("arm: duplicate accelerator id %d", h.ID)
		}
		a := &accel{id: h.ID, rank: h.Rank, state: acFree}
		s.accels = append(s.accels, a)
		s.byID[h.ID] = a
	}
	return s, nil
}

func (s *Server) now() sim.Time { return s.sim.Now() }

// Run serves requests until a shutdown request arrives. It is typically
// spawned as the ARM rank's process.
func (s *Server) Run(p *sim.Proc) {
	s.lastChange = s.now()
	if s.healthOn {
		// Treat startup as one fresh beat from everyone: daemons get a
		// full silence budget before the detector may suspect them.
		s.lastBeat = make(map[int]sim.Time)
		for _, a := range s.accels {
			s.lastBeat[a.rank] = s.now()
		}
		s.scheduleTick()
	}
	for {
		data, st := s.comm.Recv(p, minimpi.AnySource, TagRequest)
		if !s.handle(st.Source, data) {
			s.closed = true
			return
		}
	}
}

// handle processes one request; it reports false on shutdown.
func (s *Server) handle(src int, data []byte) bool {
	r := wire.NewReader(data)
	op := r.U8()
	reqID := r.U64()
	// Any request from a lease holder proves the client alive: renew its
	// leases implicitly (the front-end's piggybacked renewal).
	if op != opHeartbeat {
		s.touchClient(src)
	}
	switch op {
	case opAcquire:
		n := r.Int()
		blocking := r.U8() == 1
		if r.Err() != nil || n <= 0 {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.acquire(&pendingAcquire{src: src, reqID: reqID, n: n, enqueued: s.now()}, blocking)
	case opRelease:
		count := r.Int()
		ids := make([]int, 0, count)
		for i := 0; i < count; i++ {
			ids = append(ids, r.Int())
		}
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.release(src, reqID, ids)
	case opStats:
		s.reply(src, reqID, statusOK, s.encodeStats(s.now()))
	case opFail:
		s.setState(r.Int(), acFailed, src, reqID)
	case opRepair:
		s.setState(r.Int(), acFree, src, reqID)
	case opReplace:
		rank := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.replace(src, reqID, rank)
	case opHeartbeat:
		count := r.Int()
		active := make([]int, 0, count)
		for i := 0; i < count; i++ {
			active = append(active, r.Int())
		}
		if r.Err() == nil {
			s.heartbeat(src, active)
		}
		// Beats are fire-and-forget: no reply.
	case opRenew:
		// The touchClient above already renewed; this op exists so a
		// client with no other traffic can keep its leases alive.
		s.reply(src, reqID, statusOK, nil)
	case opMigrate:
		rank := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.migrate(src, reqID, rank)
	case opDrain:
		id := r.Int()
		deadline := sim.Duration(r.I64())
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.drain(src, reqID, id, deadline)
	case opShutdown:
		s.reply(src, reqID, statusOK, nil)
		return false
	default:
		s.reply(src, reqID, statusBadRequest, nil)
	}
	return true
}

func (s *Server) reply(dst int, reqID uint64, status uint8, body []byte) {
	w := wire.NewWriter(1 + len(body))
	w.U8(status)
	if body != nil {
		w.Blob(body)
	} else {
		w.Blob(nil)
	}
	s.comm.Isend(dst, tagReplyBase+minimpi.Tag(reqID), w.Bytes())
}

// operational counts accelerators that can (eventually) serve: everything
// but failed and retired ones. Suspect accelerators count — they may
// recover — so a queued request waiting on one blocks rather than being
// rejected until the detector declares the node dead.
func (s *Server) operational() int {
	n := 0
	for _, a := range s.accels {
		if a.state != acFailed && a.state != acRetired {
			n++
		}
	}
	return n
}

func (s *Server) freeCount() int {
	n := 0
	for _, a := range s.accels {
		if a.state == acFree {
			n++
		}
	}
	return n
}

// accrue charges the busy-time integral up to now.
func (s *Server) accrue(now sim.Time) {
	dt := now.Sub(s.lastChange).Seconds()
	if dt > 0 {
		s.busySeconds += dt * float64(s.assignedNow)
	}
	s.lastChange = now
}

func (s *Server) acquire(req *pendingAcquire, blocking bool) {
	if req.n > s.operational() {
		s.reply(req.src, req.reqID, statusImpossible, nil)
		return
	}
	if s.freeCount() >= req.n && (s.policy == Backfill || len(s.queue) == 0) {
		s.grant(req)
		return
	}
	if !blocking {
		s.reply(req.src, req.reqID, statusUnavailable, nil)
		return
	}
	s.queue = append(s.queue, req)
}

// grant assigns req.n free accelerators (lowest id first) and replies
// with their handles.
func (s *Server) grant(req *pendingAcquire) {
	s.accrue(s.now())
	w := wire.NewWriter(8 + 16*req.n)
	w.Int(req.n)
	granted := 0
	for _, a := range s.accels {
		if granted == req.n {
			break
		}
		if a.state != acFree {
			continue
		}
		a.state = acAssigned
		a.owner = req.src
		a.notified = false
		if s.healthOn && s.health.LeaseTTL > 0 {
			a.lease = s.now().Add(s.health.LeaseTTL)
		}
		w.Int(a.id).Int(a.rank)
		granted++
	}
	if granted != req.n {
		panic(fmt.Sprintf("arm: grant invariant broken: %d of %d", granted, req.n))
	}
	s.assignedNow += req.n
	s.acquireCount++
	s.waitSeconds += s.now().Sub(req.enqueued).Seconds()
	s.reply(req.src, req.reqID, statusOK, w.Bytes())
}

func (s *Server) release(src int, reqID uint64, ids []int) {
	// Validate ownership first so a bad release changes nothing.
	for _, id := range ids {
		a, ok := s.byID[id]
		if !ok || (a.state == acAssigned && a.owner != src) || a.state == acFree {
			s.reply(src, reqID, statusBadRequest, nil)
			return
		}
	}
	s.accrue(s.now())
	for _, id := range ids {
		a := s.byID[id]
		if a.state == acAssigned {
			a.owner = 0
			s.assignedNow--
			if a.draining {
				s.retire(a)
			} else {
				a.state = acFree
			}
		}
		// Releasing a failed (or suspect, reclaiming, retired) accelerator
		// leaves it in that state.
	}
	s.releaseCount++
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue()
}

// drainQueue grants queued requests according to the policy and rejects
// requests that became impossible.
func (s *Server) drainQueue() {
	for {
		progressed := false
		kept := s.queue[:0]
		for i, req := range s.queue {
			switch {
			case req.n > s.operational():
				s.reply(req.src, req.reqID, statusImpossible, nil)
				progressed = true
			case s.freeCount() >= req.n:
				s.grant(req)
				progressed = true
			default:
				kept = append(kept, req)
				if s.policy == FIFO {
					// Strict FIFO: nothing behind an unsatisfiable head.
					kept = append(kept, s.queue[i+1:]...)
					s.queue = kept
					return
				}
			}
		}
		s.queue = kept
		if !progressed {
			return
		}
	}
}

// replace handles a compute node's failure report for an accelerator it
// holds (identified by daemon rank, which is what the computation API
// knows): the accelerator is marked failed and a replacement is granted
// from the free pool. The grant is non-blocking — waiting for another
// job to release could deadlock the reporter, so an empty pool answers
// unavailable and the caller decides whether to retry. The reply has the
// same shape as an acquire reply with one handle.
func (s *Server) replace(src int, reqID uint64, rank int) {
	var failed *accel
	for _, a := range s.accels {
		if a.rank == rank && a.state == acAssigned && a.owner == src {
			failed = a
			break
		}
	}
	if failed == nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(s.now())
	failed.state = acFailed
	failed.owner = 0
	s.assignedNow--
	s.settleDrainer(failed)
	// The shrunken pool may make queued requests impossible; settle them
	// before queueing the replacement acquire.
	s.drainQueue()
	s.acquire(&pendingAcquire{src: src, reqID: reqID, n: 1, enqueued: s.now()}, false)
}

// setState handles fail/repair administrative requests.
func (s *Server) setState(id int, state acState, src int, reqID uint64) {
	a, ok := s.byID[id]
	if !ok {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(s.now())
	if a.state == acAssigned && state == acFailed {
		// The paper's fault-tolerance property: the compute node survives;
		// it discovers the failure on next use or at release.
		s.assignedNow--
	}
	if state == acFree {
		// Administrative repair returns any out-of-service accelerator
		// (failed, suspect, retired) to the pool, presumed clean.
		a.owner = 0
		a.dirty = false
		a.draining = false
		if s.lastBeat != nil {
			s.lastBeat[a.rank] = s.now()
		}
	}
	a.state = state
	if state == acFailed {
		s.settleDrainer(a)
	}
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue()
}

func (s *Server) encodeStats(now sim.Time) []byte {
	s.accrue(now)
	st := PoolStats{
		Total:      len(s.accels),
		Queued:     len(s.queue),
		Acquires:   s.acquireCount,
		Releases:   s.releaseCount,
		Reclaimed:  s.reclaimedCount,
		Migrations: s.migrateCount,

		BusySeconds: s.busySeconds,
		WaitSeconds: s.waitSeconds,
	}
	for _, a := range s.accels {
		switch a.state {
		case acFree:
			st.Free++
		case acAssigned:
			st.Assigned++
		case acFailed:
			st.Failed++
		case acSuspect, acReclaiming:
			st.Suspect++
		case acRetired:
			st.Retired++
		}
	}
	w := wire.NewWriter(96)
	w.Int(st.Total).Int(st.Free).Int(st.Assigned).Int(st.Failed).Int(st.Queued)
	w.Int(st.Acquires).Int(st.Releases).F64(st.BusySeconds).F64(st.WaitSeconds)
	w.Int(st.Suspect).Int(st.Retired).Int(st.Reclaimed).Int(st.Migrations)
	return w.Bytes()
}

func decodeStats(body []byte) (PoolStats, error) {
	r := wire.NewReader(body)
	st := PoolStats{
		Total:    r.Int(),
		Free:     r.Int(),
		Assigned: r.Int(),
		Failed:   r.Int(),
		Queued:   r.Int(),
		Acquires: r.Int(),
		Releases: r.Int(),
	}
	st.BusySeconds = r.F64()
	st.WaitSeconds = r.F64()
	st.Suspect = r.Int()
	st.Retired = r.Int()
	st.Reclaimed = r.Int()
	st.Migrations = r.Int()
	return st, r.Err()
}
