// Package arm implements the paper's Accelerator Resource Manager: the
// service that tracks which network-attached accelerators are free or in
// use and assigns them exclusively to compute nodes on request.
//
// The ARM runs as one rank of a minimpi world and is driven entirely by
// messages, as in the paper's architecture (Figure 3): compute nodes use
// the resource-management API (the Client type) to acquire accelerators
// before or during a job and release them afterwards; every assignment is
// exclusive and is represented by a Handle the computation API uses to
// address the accelerator's back-end daemon.
//
// Both assignment strategies of the paper are supported: static (acquire
// before the compute phase, hold for the job lifetime) and dynamic
// (acquire and release at runtime, with optional blocking until
// accelerators free up). The paper defers the dynamic strategy to future
// work; here it is fully implemented, including FIFO and backfill
// queueing policies and accelerator failure handling (the paper's fault
// tolerance claim: a broken accelerator never takes a compute node down).
package arm

import (
	"errors"
	"fmt"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Handle is an exclusive assignment of one accelerator: its pool id and
// the world rank its back-end daemon listens on.
type Handle struct {
	ID   int
	Rank int
}

// Control-plane tags. TagRequest carries client→ARM requests; replies use
// tagReplyBase plus the client's request sequence number, so delayed
// (blocking) replies never collide.
const (
	TagRequest   minimpi.Tag = 1 << 20
	tagReplyBase minimpi.Tag = TagRequest + 1
)

// Request op codes.
const (
	opAcquire uint8 = iota + 1
	opRelease
	opStats
	opFail
	opRepair
	opShutdown
	opReplace
)

// Reply status codes.
const (
	statusOK uint8 = iota
	statusUnavailable
	statusImpossible
	statusBadRequest
)

// Errors returned by the client API.
var (
	// ErrUnavailable: a non-blocking acquire found too few free
	// accelerators.
	ErrUnavailable = errors.New("arm: not enough free accelerators")
	// ErrImpossible: the request exceeds the number of operational
	// accelerators and can never be satisfied.
	ErrImpossible = errors.New("arm: request exceeds operational pool size")
	// ErrBadRequest: malformed or inconsistent request (e.g. releasing a
	// handle the caller does not own).
	ErrBadRequest = errors.New("arm: bad request")
)

// Policy selects how queued (blocking) acquires are granted.
type Policy int

// Queueing policies.
const (
	// FIFO grants strictly in arrival order; a large request at the head
	// blocks later smaller ones.
	FIFO Policy = iota
	// Backfill lets a later request proceed when the head request cannot
	// yet be satisfied but the later one can (improves utilization at the
	// cost of possible head starvation).
	Backfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PoolStats is a snapshot of the ARM's bookkeeping.
type PoolStats struct {
	Total    int
	Free     int
	Assigned int
	Failed   int
	Queued   int
	// Acquires and Releases count completed operations.
	Acquires int
	Releases int
	// BusySeconds integrates assigned-accelerator time: one accelerator
	// assigned for one virtual second contributes 1.0.
	BusySeconds float64
	// WaitSeconds integrates time acquire requests spent queued.
	WaitSeconds float64
}

// Utilization returns the mean fraction of the pool assigned over the
// elapsed virtual time.
func (ps PoolStats) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 || ps.Total == 0 {
		return 0
	}
	return ps.BusySeconds / (elapsed.Seconds() * float64(ps.Total))
}

type acState int

const (
	acFree acState = iota
	acAssigned
	acFailed
)

type accel struct {
	id    int
	rank  int
	state acState
	owner int // world rank of owner while assigned
}

type pendingAcquire struct {
	src      int // communicator rank of requester
	reqID    uint64
	n        int
	enqueued sim.Time
}

// Server is the ARM service state machine.
type Server struct {
	comm   *minimpi.Comm
	policy Policy

	accels []*accel // pool order = grant order (lowest id first)
	byID   map[int]*accel
	queue  []*pendingAcquire

	// accounting
	lastChange   sim.Time
	assignedNow  int
	busySeconds  float64
	waitSeconds  float64
	acquireCount int
	releaseCount int
}

// NewServer creates an ARM serving the given accelerator inventory on the
// communicator. Inventory ids must be unique.
func NewServer(comm *minimpi.Comm, inventory []Handle, policy Policy) (*Server, error) {
	s := &Server{comm: comm, policy: policy, byID: make(map[int]*accel)}
	for _, h := range inventory {
		if _, dup := s.byID[h.ID]; dup {
			return nil, fmt.Errorf("arm: duplicate accelerator id %d", h.ID)
		}
		a := &accel{id: h.ID, rank: h.Rank, state: acFree}
		s.accels = append(s.accels, a)
		s.byID[h.ID] = a
	}
	return s, nil
}

// Run serves requests until a shutdown request arrives. It is typically
// spawned as the ARM rank's process.
func (s *Server) Run(p *sim.Proc) {
	s.lastChange = p.Now()
	for {
		data, st := s.comm.Recv(p, minimpi.AnySource, TagRequest)
		if !s.handle(p, st.Source, data) {
			return
		}
	}
}

// handle processes one request; it reports false on shutdown.
func (s *Server) handle(p *sim.Proc, src int, data []byte) bool {
	r := wire.NewReader(data)
	op := r.U8()
	reqID := r.U64()
	switch op {
	case opAcquire:
		n := r.Int()
		blocking := r.U8() == 1
		if r.Err() != nil || n <= 0 {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.acquire(p, &pendingAcquire{src: src, reqID: reqID, n: n, enqueued: p.Now()}, blocking)
	case opRelease:
		count := r.Int()
		ids := make([]int, 0, count)
		for i := 0; i < count; i++ {
			ids = append(ids, r.Int())
		}
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.release(p, src, reqID, ids)
	case opStats:
		s.reply(src, reqID, statusOK, s.encodeStats(p.Now()))
	case opFail:
		s.setState(p, r.Int(), acFailed, src, reqID)
	case opRepair:
		s.setState(p, r.Int(), acFree, src, reqID)
	case opReplace:
		rank := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.replace(p, src, reqID, rank)
	case opShutdown:
		s.reply(src, reqID, statusOK, nil)
		return false
	default:
		s.reply(src, reqID, statusBadRequest, nil)
	}
	return true
}

func (s *Server) reply(dst int, reqID uint64, status uint8, body []byte) {
	w := wire.NewWriter(1 + len(body))
	w.U8(status)
	if body != nil {
		w.Blob(body)
	} else {
		w.Blob(nil)
	}
	s.comm.Isend(dst, tagReplyBase+minimpi.Tag(reqID), w.Bytes())
}

// operational counts non-failed accelerators.
func (s *Server) operational() int {
	n := 0
	for _, a := range s.accels {
		if a.state != acFailed {
			n++
		}
	}
	return n
}

func (s *Server) freeCount() int {
	n := 0
	for _, a := range s.accels {
		if a.state == acFree {
			n++
		}
	}
	return n
}

// accrue charges the busy-time integral up to now.
func (s *Server) accrue(now sim.Time) {
	dt := now.Sub(s.lastChange).Seconds()
	if dt > 0 {
		s.busySeconds += dt * float64(s.assignedNow)
	}
	s.lastChange = now
}

func (s *Server) acquire(p *sim.Proc, req *pendingAcquire, blocking bool) {
	if req.n > s.operational() {
		s.reply(req.src, req.reqID, statusImpossible, nil)
		return
	}
	if s.freeCount() >= req.n && (s.policy == Backfill || len(s.queue) == 0) {
		s.grant(p, req)
		return
	}
	if !blocking {
		s.reply(req.src, req.reqID, statusUnavailable, nil)
		return
	}
	s.queue = append(s.queue, req)
}

// grant assigns req.n free accelerators (lowest id first) and replies
// with their handles.
func (s *Server) grant(p *sim.Proc, req *pendingAcquire) {
	s.accrue(p.Now())
	w := wire.NewWriter(8 + 16*req.n)
	w.Int(req.n)
	granted := 0
	for _, a := range s.accels {
		if granted == req.n {
			break
		}
		if a.state != acFree {
			continue
		}
		a.state = acAssigned
		a.owner = req.src
		w.Int(a.id).Int(a.rank)
		granted++
	}
	if granted != req.n {
		panic(fmt.Sprintf("arm: grant invariant broken: %d of %d", granted, req.n))
	}
	s.assignedNow += req.n
	s.acquireCount++
	s.waitSeconds += p.Now().Sub(req.enqueued).Seconds()
	s.reply(req.src, req.reqID, statusOK, w.Bytes())
}

func (s *Server) release(p *sim.Proc, src int, reqID uint64, ids []int) {
	// Validate ownership first so a bad release changes nothing.
	for _, id := range ids {
		a, ok := s.byID[id]
		if !ok || (a.state == acAssigned && a.owner != src) || a.state == acFree {
			s.reply(src, reqID, statusBadRequest, nil)
			return
		}
	}
	s.accrue(p.Now())
	for _, id := range ids {
		a := s.byID[id]
		if a.state == acAssigned {
			a.state = acFree
			a.owner = 0
			s.assignedNow--
		}
		// Releasing a failed accelerator leaves it failed.
	}
	s.releaseCount++
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue(p)
}

// drainQueue grants queued requests according to the policy and rejects
// requests that became impossible.
func (s *Server) drainQueue(p *sim.Proc) {
	for {
		progressed := false
		kept := s.queue[:0]
		for i, req := range s.queue {
			switch {
			case req.n > s.operational():
				s.reply(req.src, req.reqID, statusImpossible, nil)
				progressed = true
			case s.freeCount() >= req.n:
				s.grant(p, req)
				progressed = true
			default:
				kept = append(kept, req)
				if s.policy == FIFO {
					// Strict FIFO: nothing behind an unsatisfiable head.
					kept = append(kept, s.queue[i+1:]...)
					s.queue = kept
					return
				}
			}
		}
		s.queue = kept
		if !progressed {
			return
		}
	}
}

// replace handles a compute node's failure report for an accelerator it
// holds (identified by daemon rank, which is what the computation API
// knows): the accelerator is marked failed and a replacement is granted
// from the free pool. The grant is non-blocking — waiting for another
// job to release could deadlock the reporter, so an empty pool answers
// unavailable and the caller decides whether to retry. The reply has the
// same shape as an acquire reply with one handle.
func (s *Server) replace(p *sim.Proc, src int, reqID uint64, rank int) {
	var failed *accel
	for _, a := range s.accels {
		if a.rank == rank && a.state == acAssigned && a.owner == src {
			failed = a
			break
		}
	}
	if failed == nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(p.Now())
	failed.state = acFailed
	s.assignedNow--
	// The shrunken pool may make queued requests impossible; settle them
	// before queueing the replacement acquire.
	s.drainQueue(p)
	s.acquire(p, &pendingAcquire{src: src, reqID: reqID, n: 1, enqueued: p.Now()}, false)
}

// setState handles fail/repair administrative requests.
func (s *Server) setState(p *sim.Proc, id int, state acState, src int, reqID uint64) {
	a, ok := s.byID[id]
	if !ok {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(p.Now())
	if a.state == acAssigned && state == acFailed {
		// The paper's fault-tolerance property: the compute node survives;
		// it discovers the failure on next use or at release.
		s.assignedNow--
	}
	if a.state == acFailed && state == acFree {
		a.owner = 0
	}
	a.state = state
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue(p)
}

func (s *Server) encodeStats(now sim.Time) []byte {
	s.accrue(now)
	st := PoolStats{
		Total:       len(s.accels),
		Queued:      len(s.queue),
		Acquires:    s.acquireCount,
		Releases:    s.releaseCount,
		BusySeconds: s.busySeconds,
		WaitSeconds: s.waitSeconds,
	}
	for _, a := range s.accels {
		switch a.state {
		case acFree:
			st.Free++
		case acAssigned:
			st.Assigned++
		case acFailed:
			st.Failed++
		}
	}
	w := wire.NewWriter(64)
	w.Int(st.Total).Int(st.Free).Int(st.Assigned).Int(st.Failed).Int(st.Queued)
	w.Int(st.Acquires).Int(st.Releases).F64(st.BusySeconds).F64(st.WaitSeconds)
	return w.Bytes()
}

func decodeStats(body []byte) (PoolStats, error) {
	r := wire.NewReader(body)
	st := PoolStats{
		Total:    r.Int(),
		Free:     r.Int(),
		Assigned: r.Int(),
		Failed:   r.Int(),
		Queued:   r.Int(),
		Acquires: r.Int(),
		Releases: r.Int(),
	}
	st.BusySeconds = r.F64()
	st.WaitSeconds = r.F64()
	return st, r.Err()
}
