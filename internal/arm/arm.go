// Package arm implements the paper's Accelerator Resource Manager: the
// service that tracks which network-attached accelerators are free or in
// use and assigns them exclusively to compute nodes on request.
//
// The ARM runs as one rank of a minimpi world and is driven entirely by
// messages, as in the paper's architecture (Figure 3): compute nodes use
// the resource-management API (the Client type) to acquire accelerators
// before or during a job and release them afterwards; every assignment is
// exclusive and is represented by a Handle the computation API uses to
// address the accelerator's back-end daemon.
//
// Both assignment strategies of the paper are supported: static (acquire
// before the compute phase, hold for the job lifetime) and dynamic
// (acquire and release at runtime, with optional blocking until
// accelerators free up). The paper defers the dynamic strategy to future
// work; here it is fully implemented, including FIFO and backfill
// queueing policies and accelerator failure handling (the paper's fault
// tolerance claim: a broken accelerator never takes a compute node down).
//
// On top of the passive bookkeeping sits an optional health subsystem
// (ConfigureHealth): daemons heartbeat the ARM, a threshold failure
// detector on the virtual clock marks silent nodes suspect and then
// dead, assignments become leases that expire when their holder stops
// renewing, and reclaimed accelerators are sanitized before re-entering
// the free pool. See health.go.
package arm

import (
	"errors"
	"fmt"
	"sort"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Handle is an assignment of one accelerator: its pool id and the world
// rank its back-end daemon listens on. Shared marks a shared lease
// (AcquireShared) as opposed to an exclusive assignment; Epoch is the
// shard leadership epoch the lease was granted under (zero from the
// unsharded manager), which the cluster stamps into the computation
// API as a fencing token. Both are client-side bookkeeping: Shared is
// not part of the wire format, and Epoch rides in the reply trailer,
// not the handle list.
type Handle struct {
	ID   int
	Rank int

	Shared bool
	Epoch  uint64

	// Cap is the accelerator's capability descriptor. Zero for legacy
	// (untagged) inventory; populated in capability-constrained acquire
	// replies so the holder knows what class of device it was granted.
	Cap Capability
}

// Control-plane tags. TagRequest carries client→ARM requests; replies use
// tagReplyBase plus the client's request sequence number, so delayed
// (blocking) replies never collide. TagNotify carries unsolicited
// ARM→client health notices (see Notice).
const (
	TagRequest   minimpi.Tag = 1 << 20
	tagReplyBase minimpi.Tag = TagRequest + 1
	TagNotify    minimpi.Tag = TagRequest - 1
	// TagReplicate carries a shard leader's log-shipping stream to its
	// follower replica (see replica.go).
	TagReplicate minimpi.Tag = TagRequest - 2
)

// Request op codes.
const (
	opAcquire uint8 = iota + 1
	opRelease
	opStats
	opFail
	opRepair
	opShutdown
	opReplace
	// Health subsystem (PR 2).
	opHeartbeat // daemon→ARM liveness beat; no reply
	opRenew     // explicit lease renewal
	opMigrate   // swap a suspect assignment for a spare
	opDrain     // retire an accelerator gracefully
	// Multi-tenant sharing (PR 4).
	opAcquireShared // like opAcquire, but a capacity-N shared lease
	opStatsEx       // opStats plus per-accelerator utilization
	// Sharded, replicated ARM with elastic membership (PR 6).
	opRegister // admit a new accelerator into the live inventory
	opRetire   // drain an accelerator, then remove it from the inventory
	opForward  // peer→peer: a client request relayed to the owning shard
	opLoad     // peer→peer: free/operational gossip for fallback placement
	opRecall   // peer→peer: dedup-cache query while serving a replay
	// Split-brain-safe failover (PR 7).
	opEpoched // client→server envelope carrying the sender's epoch view
	// Heterogeneous fleets (PR 9).
	opAcquireCapable // opAcquire with a capability constraint and described reply
)

// Reply status codes.
const (
	statusOK uint8 = iota
	statusUnavailable
	statusImpossible
	statusBadRequest
	// statusFenced: the answering server has abdicated — a higher
	// leadership epoch exists for its shard. The client must re-resolve
	// the serving rank from the directory and replay (same reqID, so
	// the dedup cache absorbs double execution).
	statusFenced
	// statusNoCapable: a capability-constrained acquire that no device in
	// the live inventory can ever satisfy — distinct from
	// statusImpossible so clients can tell "wrong fleet" from "pool too
	// small" and stop retrying immediately.
	statusNoCapable
)

// Errors returned by the client API.
var (
	// ErrUnavailable: a non-blocking acquire found too few free
	// accelerators.
	ErrUnavailable = errors.New("arm: not enough free accelerators")
	// ErrImpossible: the request exceeds the number of operational
	// accelerators and can never be satisfied.
	ErrImpossible = errors.New("arm: request exceeds operational pool size")
	// ErrBadRequest: malformed or inconsistent request (e.g. releasing a
	// handle the caller does not own).
	ErrBadRequest = errors.New("arm: bad request")
	// ErrFenced: the operation carried (or was served under) a stale
	// leadership epoch. For a client this means the shard failed over
	// and even replaying at the new serving rank did not help; for the
	// ARM's own daemon-side reclaim calls it means a newer leader has
	// fenced the daemon and this server must step down.
	ErrFenced = errors.New("arm: fenced: leadership epoch is stale")
	// ErrAcquireTimeout: a blocking sharded acquire exhausted its retry
	// budget without a grant. Returned as *AcquireTimeoutError, which
	// reports the attempt count and elapsed virtual time.
	ErrAcquireTimeout = errors.New("arm: blocking acquire timed out")
	// ErrNoCapableDevice: a capability-constrained acquire names a
	// class or kernel no live accelerator can serve; waiting would
	// block forever, so both blocking and non-blocking acquires fail
	// immediately with this error.
	ErrNoCapableDevice = errors.New("arm: no capable device for constraint")
)

// AcquireTimeoutError reports a blocking acquire that gave up: how many
// jittered attempts were made and how much virtual time they spanned.
// It matches ErrAcquireTimeout under errors.Is.
type AcquireTimeoutError struct {
	Attempts int
	Elapsed  sim.Duration
}

func (e *AcquireTimeoutError) Error() string {
	return fmt.Sprintf("arm: blocking acquire timed out after %d attempts over %v", e.Attempts, e.Elapsed)
}

// Is makes errors.Is(err, ErrAcquireTimeout) true for this type.
func (e *AcquireTimeoutError) Is(target error) bool { return target == ErrAcquireTimeout }

// Policy selects how queued (blocking) acquires are granted.
type Policy int

// Queueing policies.
const (
	// FIFO grants strictly in arrival order; a large request at the head
	// blocks later smaller ones.
	FIFO Policy = iota
	// Backfill lets a later request proceed when the head request cannot
	// yet be satisfied but the later one can (improves utilization at the
	// cost of possible head starvation).
	Backfill
)

func (p Policy) String() string {
	switch p {
	case FIFO:
		return "fifo"
	case Backfill:
		return "backfill"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// PoolStats is a snapshot of the ARM's bookkeeping.
type PoolStats struct {
	Total    int
	Free     int
	Assigned int
	Failed   int
	// Suspect counts accelerators out of the free pool because their
	// daemon went silent (including those being sanitized after a
	// reclaim); Retired counts accelerators drained out of service.
	Suspect int
	Retired int
	Queued  int
	// Acquires and Releases count completed operations.
	Acquires int
	Releases int
	// Reclaimed counts leases the ARM revoked (expiry or forced drain);
	// Migrations counts suspect assignments swapped for a spare.
	Reclaimed  int
	Migrations int
	// BusySeconds integrates in-use accelerator time: one accelerator
	// assigned (or shared by at least one tenant) for one virtual second
	// contributes 1.0.
	BusySeconds float64
	// WaitSeconds integrates time acquire requests spent queued.
	WaitSeconds float64
	// Shared counts accelerators currently under shared leases (these are
	// also counted in Assigned, preserving the legacy partition of Total);
	// Sessions counts the shared leases held across them. Both are zero in
	// exclusive-only operation.
	Shared   int
	Sessions int
	// PerAccel is per-accelerator utilization, populated only by
	// Client.StatsEx (the legacy Stats reply layout is unchanged).
	PerAccel []AccelStats
}

// AccelStats is one accelerator's slice of the pool accounting, reported
// by Client.StatsEx.
type AccelStats struct {
	ID   int
	Rank int
	// State is the accelerator's lifecycle state ("free", "assigned",
	// "shared", "failed", "suspect", "reclaiming", "retired").
	State string
	// Class is the accelerator's device class ("c1060", "fermi", "fpga");
	// empty on an untagged (homogeneous legacy) fleet.
	Class string
	// Sessions counts current holders: the sharer count of a shared
	// accelerator, 1 when exclusively assigned, 0 otherwise.
	Sessions int
	// Grants counts leases ever granted on this accelerator.
	Grants int
	// BusySeconds integrates this accelerator's in-use time; WaitSeconds
	// sums the queue wait of the grants it served.
	BusySeconds float64
	WaitSeconds float64
}

// Utilization returns the mean fraction of the pool assigned over the
// elapsed virtual time.
func (ps PoolStats) Utilization(elapsed sim.Duration) float64 {
	if elapsed <= 0 || ps.Total == 0 {
		return 0
	}
	return ps.BusySeconds / (elapsed.Seconds() * float64(ps.Total))
}

type acState int

const (
	acFree acState = iota
	acAssigned
	acFailed
	// acSuspect: the daemon stopped heartbeating (or the accelerator was
	// migrated away from); unowned and not grantable, but may recover.
	acSuspect
	// acReclaiming: a revoked lease's accelerator while its daemon-side
	// sanitize (device reset) is in flight.
	acReclaiming
	// acRetired: drained out of service; only an administrative repair
	// brings it back.
	acRetired
	// acShared: held by one or more tenants under capacity-N shared
	// leases (AcquireShared). Counted as assigned in the legacy stats.
	acShared
)

func (st acState) String() string {
	switch st {
	case acFree:
		return "free"
	case acAssigned:
		return "assigned"
	case acShared:
		return "shared"
	case acFailed:
		return "failed"
	case acSuspect:
		return "suspect"
	case acReclaiming:
		return "reclaiming"
	case acRetired:
		return "retired"
	default:
		return fmt.Sprintf("state(%d)", int(st))
	}
}

// drainWait remembers the requester of a pending opDrain so the reply can
// be sent once the accelerator actually retires.
type drainWait struct {
	src   int
	reqID uint64
}

type accel struct {
	id    int
	rank  int
	state acState
	owner int // world rank of owner while assigned

	// sharers maps tenant rank → lease expiry (0 = no lease) while the
	// accelerator is shared. Non-empty only in acShared, except that a
	// failure may freeze the map so tenants can still release.
	sharers map[int]sim.Time

	// Health bookkeeping (unused while the subsystem is off).
	lease    sim.Time   // assignment expires when now passes this (0 = no lease)
	dirty    bool       // device may hold residue; sanitize before re-granting
	draining bool       // retire instead of freeing on next un-assignment
	removing bool       // opRetire: leave the inventory once out of service
	notified bool       // owner has been sent a suspect notice
	drainer  *drainWait // pending opDrain reply

	// cap is the capability descriptor the accelerator registered with;
	// zero for legacy untagged inventory.
	cap Capability

	// Per-accelerator accounting (see AccelStats).
	busySeconds float64
	waitSeconds float64
	grants      int
}

// holders counts the clients currently holding a: 1 for an exclusive
// assignment, the sharer count for a shared accelerator, 0 otherwise.
func (a *accel) holders() int {
	switch a.state {
	case acAssigned:
		return 1
	case acShared:
		return len(a.sharers)
	default:
		return 0
	}
}

// sortedSharerRanks returns a's sharer ranks in ascending order, so loops
// over them are deterministic.
func sortedSharerRanks(a *accel) []int {
	ranks := make([]int, 0, len(a.sharers))
	for r := range a.sharers {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	return ranks
}

type pendingAcquire struct {
	src      int // communicator rank of requester
	reqID    uint64
	n        int
	shared   bool // capacity-N shared leases instead of exclusive
	enqueued sim.Time
	// forwarded marks a request relayed by a peer shard: it executes
	// non-blocking, never re-forwards (no routing loops), and the reply
	// goes straight to the original client at src.
	forwarded bool
	// constraint restricts the grant to matching devices (zero = any);
	// capable marks an opAcquireCapable request, whose reply carries
	// each handle's capability descriptor.
	constraint Constraint
	capable    bool
}

// Options configures an ARM server beyond the queueing policy.
type Options struct {
	// Policy selects how queued (blocking) acquires are granted.
	Policy Policy
	// ShareCapacity is the maximum number of tenants AcquireShared may
	// place on one accelerator. Zero (the default) disables shared leases
	// entirely: AcquireShared fails with ErrBadRequest and the ARM behaves
	// exactly as the exclusive-only manager.
	ShareCapacity int
	// Shards is the total number of ARM shards this server is part of;
	// 0 or 1 (the default) is the classic single manager with every
	// sharding code path dormant. When > 1, Directory is required and
	// Shard names this server's index. Accelerator ownership is
	// partitioned by the directory's consistent-hash ring; requests for
	// accelerators owned elsewhere are forwarded to the owning peer, and
	// acquires the local pool cannot satisfy fall back to the
	// least-loaded peer (see shard.go).
	Shards int
	// Shard is this server's shard index in [0, Shards).
	Shard int
	// Directory supplies the ownership ring and the leader/follower rank
	// table shared by every shard and client. Setting it (even with one
	// shard) also arms the reply-dedup cache, and a follower rank in the
	// directory enables log-shipping replication to it.
	Directory *Directory
}

// Server is the ARM service state machine.
type Server struct {
	comm     *minimpi.Comm
	sim      *sim.Simulation
	policy   Policy
	shareCap int // tenants per accelerator for shared leases; 0 = disabled

	accels []*accel // pool order = grant order (lowest id first)
	byID   map[int]*accel
	queue  []*pendingAcquire

	// Health subsystem (health.go); healthOn only after ConfigureHealth.
	health    HealthConfig
	healthOn  bool
	sanitizer func(p *sim.Proc, rank int) error
	reaper    func(p *sim.Proc, rank, client int) error
	lastBeat  map[int]sim.Time // daemon rank → last heartbeat arrival
	closed    bool             // stops the detector tick after shutdown

	// Sharding and replication (shard.go, replica.go). dir == nil is the
	// classic single manager: none of this machinery runs and the wire
	// traffic is byte-identical to the unsharded ARM.
	dir          *Directory
	shard        int
	sharded      bool // dir has more than one shard
	replicated   bool // ship the effect log to followerRank
	followerRank int
	peerFree     []int  // per-shard free counts from opLoad gossip
	peerOper     []int  // per-shard operational counts
	peerSeen     []bool // which peers have gossiped at least once
	// Per-class gossip (capability.go): shard → class → counts. Only
	// populated between classed peers; nil maps otherwise.
	peerClassFree []map[string]int
	peerClassOper []map[string]int
	// classed is true while any inventory entry carries a capability
	// descriptor; it gates every new wire section so untagged fleets
	// stay byte-identical to the legacy ARM.
	classed bool
	fwdSeq       uint64 // reply-tag sequence for server-to-server calls
	fwdW         *wire.Writer
	replies      map[int]map[uint64][]byte // client → reqID → sent reply (dedup)
	repW         *wire.Writer
	repSeq       uint64
	repReplies   []repReply
	mainProc     *sim.Proc
	spawned      []*sim.Proc // helper procs that die with the server (Kill)

	// Epoch fencing (PR 7, DESIGN.md §12). myEpoch is the leadership
	// epoch this server believes it serves under (directory epoch at
	// construction, re-read at promotion); seenEpoch is the highest
	// epoch observed in traffic. Observing seenEpoch > myEpoch means a
	// newer leader exists for this shard: the server abdicates — it
	// answers ownership ops with statusFenced, stops granting,
	// gossiping, shipping, and reclaiming, and only dedup-cache resends
	// and read-only ops keep working.
	myEpoch   uint64
	seenEpoch uint64
	abdicated bool
	// fencer pushes this server's epoch to one daemon as a fencing
	// token (the cluster wires a tokened no-op through the computation
	// API). Run at promotion for every daemon of the shard so stale
	// lease holders and the deposed leader's reclaims are rejected
	// before the new leader re-grants anything.
	fencer func(p *sim.Proc, rank int, epoch uint64) error
	// ledger records every grant and hold-end with its epoch and
	// virtual time; the split-brain checker replays merged ledgers
	// after chaos runs (ledger.go). Only populated when dir != nil.
	ledger []GrantEvent

	// accounting
	lastChange     sim.Time
	busySeconds    float64
	waitSeconds    float64
	acquireCount   int
	releaseCount   int
	reclaimedCount int
	migrateCount   int
}

// NewServer creates an ARM serving the given accelerator inventory on the
// communicator. Inventory ids must be unique.
func NewServer(comm *minimpi.Comm, inventory []Handle, policy Policy) (*Server, error) {
	return NewServerOpts(comm, inventory, Options{Policy: policy})
}

// NewServerOpts is NewServer with full options.
func NewServerOpts(comm *minimpi.Comm, inventory []Handle, opts Options) (*Server, error) {
	if opts.ShareCapacity < 0 {
		return nil, fmt.Errorf("arm: negative share capacity %d", opts.ShareCapacity)
	}
	s := &Server{
		comm:     comm,
		sim:      comm.World().Sim(),
		policy:   opts.Policy,
		shareCap: opts.ShareCapacity,
		byID:     make(map[int]*accel),
	}
	if err := s.configureShard(opts); err != nil {
		return nil, err
	}
	for _, h := range inventory {
		if _, dup := s.byID[h.ID]; dup {
			return nil, fmt.Errorf("arm: duplicate accelerator id %d", h.ID)
		}
		if s.sharded && s.dir.OwnerOf(h.ID) != s.shard {
			return nil, fmt.Errorf("arm: accelerator %d belongs to shard %d, not %d",
				h.ID, s.dir.OwnerOf(h.ID), s.shard)
		}
		a := &accel{id: h.ID, rank: h.Rank, state: acFree, cap: h.Cap}
		s.accels = append(s.accels, a)
		s.byID[h.ID] = a
	}
	s.updateClassed()
	return s, nil
}

func (s *Server) now() sim.Time { return s.sim.Now() }

// Run serves requests until a shutdown request arrives. It is typically
// spawned as the ARM rank's process.
func (s *Server) Run(p *sim.Proc) {
	s.mainProc = p
	s.lastChange = s.now()
	if s.healthOn {
		// Treat startup as one fresh beat from everyone: daemons get a
		// full silence budget before the detector may suspect them.
		if s.lastBeat == nil {
			s.lastBeat = make(map[int]sim.Time)
		}
		for _, a := range s.accels {
			s.lastBeat[a.rank] = s.now()
		}
		s.scheduleTick()
	}
	if s.sharded || s.replicated {
		s.scheduleShardTick()
	}
	for {
		data, st := s.comm.Recv(p, minimpi.AnySource, TagRequest)
		if !s.handle(st.Source, data) {
			s.closed = true
			return
		}
	}
}

// handle processes one request; it reports false on shutdown.
func (s *Server) handle(src int, data []byte) bool {
	r := wire.NewReader(data)
	op := r.U8()
	reqID := r.U64()
	if op == opEpoched {
		// Sharded clients wrap requests in an epoch envelope: the id
		// slot carries their directory view of this shard's epoch, the
		// real header follows. A claim above myEpoch means a newer
		// leader exists and this server must step down.
		s.observeEpoch(reqID)
		op = r.U8()
		reqID = r.U64()
	}
	forwarded := false
	if op == opForward {
		// A peer relayed a client's request to us, the owner: unwrap it
		// and execute on the original client's behalf. The reply goes
		// straight back to that client (its sharded reply Irecv matches
		// any source), so a forward costs one extra hop, not two. The
		// envelope's id slot carries the forwarder's view of this
		// shard's epoch (it was 0 before fencing existed).
		s.observeEpoch(reqID)
		src = r.Int()
		op = r.U8()
		reqID = r.U64()
		forwarded = true
	}
	switch op {
	case opLoad:
		// The id slot of gossip carries the sender's view of this
		// shard's epoch — the step-down channel for a deposed leader.
		s.observeEpoch(reqID)
		s.handleLoad(src, r)
		return true
	case opRecall:
		s.handleRecall(src, reqID, r)
		return true
	}
	// Any request from a lease holder proves the client alive: renew its
	// leases implicitly (the front-end's piggybacked renewal).
	if op != opHeartbeat {
		s.touchClient(src)
		if cached := s.cachedReply(src, reqID); cached != nil {
			// Failover replay of a request we already answered: resend
			// the recorded reply instead of executing twice.
			s.resendReply(src, reqID, cached)
			s.ship()
			return true
		}
	}
	res := s.dispatch(src, reqID, op, forwarded, r)
	s.ship()
	return res
}

// dispatch executes one unwrapped request; it reports false on shutdown.
func (s *Server) dispatch(src int, reqID uint64, op uint8, forwarded bool, r *wire.Reader) bool {
	if s.abdicated {
		// A deposed leader serves nothing that touches ownership: the
		// client re-resolves the directory and replays at the real
		// leader. Read-only stats stay up for postmortems, shutdown
		// still works, and heartbeats are dropped on the floor.
		switch op {
		case opShutdown:
			s.reply(src, reqID, statusOK, nil)
			return false
		case opHeartbeat:
			return true
		case opStats:
			s.reply(src, reqID, statusOK, s.encodeStats(s.now()))
			return true
		case opStatsEx:
			s.reply(src, reqID, statusOK, s.encodeStatsEx(s.now()))
			return true
		default:
			s.reply(src, reqID, statusFenced, nil)
			return true
		}
	}
	switch op {
	case opAcquire, opAcquireShared, opAcquireCapable:
		n := r.Int()
		blocking := r.U8() == 1
		var constraint Constraint
		if op == opAcquireCapable {
			constraint = decodeConstraint(r)
		}
		replay := r.Remaining() > 0 && r.U8() == 1 // absent in legacy requests
		if r.Err() != nil || n <= 0 {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		req := &pendingAcquire{
			src: src, reqID: reqID, n: n,
			shared: op == opAcquireShared, enqueued: s.now(), forwarded: forwarded,
			constraint: constraint, capable: op == opAcquireCapable,
		}
		if replay && s.sharded && !forwarded {
			// The original attempt may have been forwarded and granted by
			// a peer before this shard's leader died: ask the peers first.
			s.recallThenAcquire(req, blocking)
			return true
		}
		s.acquire(req, blocking && !forwarded)
	case opRelease:
		count := r.Int()
		ids := make([]int, 0, count)
		for i := 0; i < count; i++ {
			ids = append(ids, r.Int())
		}
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		if owner, ok := s.foreignOwner(ids, forwarded); ok {
			s.forwardOp(owner, src, reqID, op, func(w *wire.Writer) {
				w.Int(len(ids))
				for _, id := range ids {
					w.Int(id)
				}
			})
			return true
		}
		s.release(src, reqID, ids)
	case opStats:
		s.reply(src, reqID, statusOK, s.encodeStats(s.now()))
	case opStatsEx:
		s.reply(src, reqID, statusOK, s.encodeStatsEx(s.now()))
	case opFail, opRepair:
		id := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		if owner, ok := s.foreignOwnerOne(id, forwarded); ok {
			s.forwardOp(owner, src, reqID, op, func(w *wire.Writer) { w.Int(id) })
			return true
		}
		if op == opFail {
			s.setState(id, acFailed, src, reqID)
		} else {
			s.setState(id, acFree, src, reqID)
		}
	case opReplace:
		rank := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.replace(src, reqID, rank)
	case opHeartbeat:
		count := r.Int()
		active := make([]int, 0, count)
		for i := 0; i < count; i++ {
			active = append(active, r.Int())
		}
		if r.Err() == nil {
			s.heartbeat(src, active)
		}
		// Beats are fire-and-forget: no reply.
	case opRenew:
		// The touchClient above already renewed; this op exists so a
		// client with no other traffic can keep its leases alive.
		s.reply(src, reqID, statusOK, nil)
	case opMigrate:
		rank := r.Int()
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		s.migrate(src, reqID, rank)
	case opDrain, opRetire:
		id := r.Int()
		deadline := sim.Duration(r.I64())
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		if owner, ok := s.foreignOwnerOne(id, forwarded); ok {
			s.forwardOp(owner, src, reqID, op, func(w *wire.Writer) {
				w.Int(id).I64(int64(deadline))
			})
			return true
		}
		if op == opRetire {
			s.retireRemove(src, reqID, id, deadline)
		} else {
			s.drain(src, reqID, id, deadline)
		}
	case opRegister:
		id := r.Int()
		rank := r.Int()
		var cap Capability
		if r.Remaining() > 0 { // optional trailer; absent in legacy requests
			cap = decodeCapability(r)
		}
		if r.Err() != nil {
			s.reply(src, reqID, statusBadRequest, nil)
			return true
		}
		if owner, ok := s.foreignOwnerOne(id, forwarded); ok {
			s.forwardOp(owner, src, reqID, op, func(w *wire.Writer) {
				w.Int(id).Int(rank)
				if !cap.IsZero() {
					encodeCapability(w, cap)
				}
			})
			return true
		}
		s.register(src, reqID, id, rank, cap)
	case opShutdown:
		s.reply(src, reqID, statusOK, nil)
		return false
	default:
		s.reply(src, reqID, statusBadRequest, nil)
	}
	return true
}

func (s *Server) reply(dst int, reqID uint64, status uint8, body []byte) {
	w := wire.NewWriter(16 + len(body))
	w.U8(status)
	if body != nil {
		w.Blob(body)
	} else {
		w.Blob(nil)
	}
	if s.dir != nil {
		// Epoch trailer: every sharded reply advertises the epoch it
		// was served under, so clients can stamp grants with their
		// fencing token. An abdicated server advertises the higher
		// epoch it observed, steering the client to refresh. Absent in
		// unsharded replies, which stay byte-identical to the legacy
		// wire format.
		w.U64(s.epochHint())
	}
	msg := w.Bytes()
	if s.dir != nil && status != statusFenced {
		// Sharded/replicated operation records every reply so a failover
		// replay of the same (client, reqID) resends instead of
		// re-executing, and ships it to the follower for the same reason.
		// Fenced refusals are deliberately not recorded: the replay must
		// re-execute at whichever server is actually serving.
		s.rememberReply(dst, reqID, msg)
		if s.replicated {
			s.repReplies = append(s.repReplies, repReply{dst: dst, reqID: reqID, msg: msg})
		}
	}
	s.comm.Isend(dst, tagReplyBase+minimpi.Tag(reqID), msg)
}

// epochHint is the epoch a reply trailer advertises: the highest this
// server has proof of (its own, or the newer one that deposed it).
func (s *Server) epochHint() uint64 {
	if s.seenEpoch > s.myEpoch {
		return s.seenEpoch
	}
	return s.myEpoch
}

// observeEpoch processes an epoch claim for this server's shard carried
// by incoming traffic. A claim above myEpoch is proof of a newer
// leader: step down.
func (s *Server) observeEpoch(claim uint64) {
	if s.dir == nil || claim <= s.myEpoch {
		return
	}
	s.stepDown(claim)
}

// stepDown moves the server into the abdicated state: queued acquires
// are refused with statusFenced (their clients re-resolve and replay at
// the real leader), and dispatch fences everything ownership-touching
// from here on. Detector, gossip, and replication ticks stop re-arming.
func (s *Server) stepDown(observed uint64) {
	if s.dir == nil || s.abdicated {
		if observed > s.seenEpoch {
			s.seenEpoch = observed
		}
		return
	}
	s.abdicated = true
	if observed > s.seenEpoch {
		s.seenEpoch = observed
	}
	for _, req := range s.queue {
		s.reply(req.src, req.reqID, statusFenced, nil)
	}
	s.queue = nil
}

// Epoch returns the leadership epoch this server serves under (0 for
// the unsharded manager).
func (s *Server) Epoch() uint64 { return s.myEpoch }

// Abdicated reports whether the server has stepped down after observing
// a higher leadership epoch for its shard.
func (s *Server) Abdicated() bool { return s.abdicated }

// StepDown forces the server into the abdicated state, as if it had
// observed the given epoch in traffic. The cluster uses it when a
// daemon fences one of this server's reclaim calls; tests use it
// directly.
func (s *Server) StepDown(observed uint64) { s.stepDown(observed) }

// SetFencer installs the function the ARM uses at promotion to push its
// new epoch to one daemon as a fencing token (the cluster wires a
// tokened no-op through the computation API). It runs in its own
// process per daemon; an ErrFenced result means an even newer epoch
// exists and this server steps down too.
func (s *Server) SetFencer(fn func(p *sim.Proc, rank int, epoch uint64) error) { s.fencer = fn }

// operational counts accelerators that can (eventually) serve: everything
// but failed and retired ones. Suspect accelerators count — they may
// recover — so a queued request waiting on one blocks rather than being
// rejected until the detector declares the node dead.
func (s *Server) operational() int {
	n := 0
	for _, a := range s.accels {
		if a.state != acFailed && a.state != acRetired {
			n++
		}
	}
	return n
}

func (s *Server) freeCount() int {
	n := 0
	for _, a := range s.accels {
		if a.state == acFree {
			n++
		}
	}
	return n
}

// accrue charges the busy-time integral up to now: each accelerator with
// at least one holder adds the elapsed interval to its own busy time and
// to the pool's. (A shared accelerator is busy, not busy-per-tenant: the
// device is in use regardless of how many sessions share it.)
func (s *Server) accrue(now sim.Time) {
	dt := now.Sub(s.lastChange).Seconds()
	if dt > 0 {
		for _, a := range s.accels {
			if a.holders() > 0 {
				a.busySeconds += dt
				s.busySeconds += dt
			}
		}
	}
	s.lastChange = now
}

// sharedGrantable reports whether a can take one more sharer for client
// src: free or already shared, not draining, below capacity, and src not
// already sharing it (one lease per tenant per accelerator).
func (s *Server) sharedGrantable(a *accel, src int) bool {
	if a.draining || len(a.sharers) >= s.shareCap {
		return false
	}
	if a.state != acFree && a.state != acShared {
		return false
	}
	_, dup := a.sharers[src]
	return !dup
}

// sharedAvailable counts accelerators that could take a new sharer for
// src right now.
func (s *Server) sharedAvailable(src int) int {
	n := 0
	for _, a := range s.accels {
		if s.sharedGrantable(a, src) {
			n++
		}
	}
	return n
}

// canGrant reports whether req is satisfiable right now. Shared and
// exclusive requests wait in the same FIFO queue; this is the single
// grant predicate both kinds are checked against.
func (s *Server) canGrant(req *pendingAcquire) bool {
	if req.shared {
		return s.sharedAvailableFor(req.src, req.constraint) >= req.n
	}
	return s.freeCountFor(req.constraint) >= req.n
}

func (s *Server) acquire(req *pendingAcquire, blocking bool) {
	if req.shared && s.shareCap <= 0 {
		// Sharing disabled: exclusive-only operation.
		s.reply(req.src, req.reqID, statusBadRequest, nil)
		return
	}
	ceiling := s.operationalFor(req.constraint)
	if req.shared {
		// Accelerators this client already shares can never satisfy the
		// request (one lease per tenant per accelerator).
		for _, a := range s.accels {
			if _, held := a.sharers[req.src]; held && a.state != acFailed && a.state != acRetired &&
				s.eligible(a, req.constraint) {
				ceiling--
			}
		}
	}
	if req.n > ceiling {
		if req.forwarded {
			// Partial view: the forwarder saw a healthier cluster than
			// this shard's pool. Unavailable lets the client retry rather
			// than aborting on a wrongly-global "impossible".
			s.reply(req.src, req.reqID, statusUnavailable, nil)
			return
		}
		if s.sharded {
			// The local ceiling is one shard's, not the cluster's: try
			// the least-loaded peer before judging the request.
			if s.forwardAcquire(req) {
				return
			}
			if !s.gossipComplete() || req.n <= s.clusterOperationalFor(req.constraint) {
				s.reply(req.src, req.reqID, statusUnavailable, nil)
				return
			}
		}
		s.reply(req.src, req.reqID, exhaustedStatus(req), nil)
		return
	}
	if s.canGrant(req) && (s.policy == Backfill || len(s.queue) == 0) {
		s.grant(req)
		return
	}
	if s.sharded && !req.forwarded && s.forwardAcquire(req) {
		return
	}
	if !blocking {
		s.reply(req.src, req.reqID, statusUnavailable, nil)
		return
	}
	s.queue = append(s.queue, req)
}

// pickShared selects n distinct accelerators for a new sharer:
// constraint-eligible candidates only, least-loaded first (fewest
// current sharers) so tenants spread across the pool, pool order
// breaking ties for determinism.
func (s *Server) pickShared(src, n int, c Constraint) []*accel {
	var cand []*accel
	for _, a := range s.accels {
		if s.sharedGrantable(a, src) && s.eligible(a, c) {
			cand = append(cand, a)
		}
	}
	sort.SliceStable(cand, func(i, j int) bool {
		return len(cand[i].sharers) < len(cand[j].sharers)
	})
	if len(cand) > n {
		cand = cand[:n]
	}
	return cand
}

// grant assigns req.n accelerators and replies with their handles:
// lowest-id free ones for an exclusive request, least-loaded shareable
// ones for a shared request.
func (s *Server) grant(req *pendingAcquire) {
	now := s.now()
	s.accrue(now)
	var lease sim.Time
	if s.healthOn && s.health.LeaseTTL > 0 {
		lease = now.Add(s.health.LeaseTTL)
	}
	wait := now.Sub(req.enqueued).Seconds()
	w := wire.NewWriter(8 + 16*req.n)
	w.Int(req.n)
	granted := 0
	if req.shared {
		for _, a := range s.pickShared(req.src, req.n, req.constraint) {
			a.state = acShared
			if a.sharers == nil {
				a.sharers = make(map[int]sim.Time)
			}
			a.sharers[req.src] = lease
			a.notified = false
			a.grants++
			a.waitSeconds += wait
			w.Int(a.id).Int(a.rank)
			if req.capable {
				encodeCapability(w, a.cap)
			}
			s.logGrant(a, req.src, true)
			granted++
		}
	} else {
		for _, a := range s.accels {
			if granted == req.n {
				break
			}
			if a.state != acFree || !s.eligible(a, req.constraint) {
				continue
			}
			a.state = acAssigned
			a.owner = req.src
			a.notified = false
			a.lease = lease
			a.grants++
			a.waitSeconds += wait
			w.Int(a.id).Int(a.rank)
			if req.capable {
				encodeCapability(w, a.cap)
			}
			s.logGrant(a, req.src, false)
			granted++
		}
	}
	if granted != req.n {
		panic(fmt.Sprintf("arm: grant invariant broken: %d of %d", granted, req.n))
	}
	s.acquireCount++
	s.waitSeconds += wait
	s.reply(req.src, req.reqID, statusOK, w.Bytes())
}

func (s *Server) release(src int, reqID uint64, ids []int) {
	// Validate ownership first so a bad release changes nothing.
	for _, id := range ids {
		a, ok := s.byID[id]
		if !ok || a.state == acFree {
			s.reply(src, reqID, statusBadRequest, nil)
			return
		}
		if a.state == acAssigned && a.owner != src {
			s.reply(src, reqID, statusBadRequest, nil)
			return
		}
		if a.state == acShared {
			if _, held := a.sharers[src]; !held {
				s.reply(src, reqID, statusBadRequest, nil)
				return
			}
		}
	}
	s.accrue(s.now())
	for _, id := range ids {
		a := s.byID[id]
		s.logEnd(a, src)
		switch a.state {
		case acAssigned:
			a.owner = 0
			if a.draining {
				s.retire(a)
			} else {
				a.state = acFree
			}
		case acShared:
			delete(a.sharers, src)
			if len(a.sharers) == 0 {
				if a.draining {
					s.retire(a)
				} else {
					a.state = acFree
				}
			}
		default:
			// Releasing a failed (or suspect, reclaiming, retired)
			// accelerator leaves it in that state; just drop any frozen
			// sharer bookkeeping for this tenant.
			delete(a.sharers, src)
		}
	}
	s.releaseCount++
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue()
}

// drainQueue grants queued requests according to the policy and rejects
// requests that became impossible. Shared and exclusive requests share
// one queue, so FIFO head-of-line blocking holds across both kinds.
func (s *Server) drainQueue() {
	for {
		progressed := false
		kept := s.queue[:0]
		for i, req := range s.queue {
			switch {
			case req.n > s.operationalFor(req.constraint):
				s.reply(req.src, req.reqID, exhaustedStatus(req), nil)
				progressed = true
			case s.canGrant(req):
				s.grant(req)
				progressed = true
			default:
				kept = append(kept, req)
				if s.policy == FIFO {
					// Strict FIFO: nothing behind an unsatisfiable head.
					kept = append(kept, s.queue[i+1:]...)
					s.queue = kept
					return
				}
			}
		}
		s.queue = kept
		if !progressed {
			return
		}
	}
}

// replace handles a compute node's failure report for an accelerator it
// holds (identified by daemon rank, which is what the computation API
// knows): the accelerator is marked failed and a replacement is granted
// from the free pool. The grant is non-blocking — waiting for another
// job to release could deadlock the reporter, so an empty pool answers
// unavailable and the caller decides whether to retry. The reply has the
// same shape as an acquire reply with one handle.
func (s *Server) replace(src int, reqID uint64, rank int) {
	var failed *accel
	shared := false
	for _, a := range s.accels {
		if a.rank != rank {
			continue
		}
		if a.state == acAssigned && a.owner == src {
			failed = a
			break
		}
		if a.state == acShared {
			if _, held := a.sharers[src]; held {
				failed = a
				shared = true
				break
			}
		}
	}
	if failed == nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(s.now())
	if shared {
		// The daemon is down for every tenant on it: tell the other
		// sharers so they can fail over too.
		for _, r := range sortedSharerRanks(failed) {
			s.logEnd(failed, r)
			if r != src {
				s.notify(r, NoticeDead, failed)
			}
		}
		failed.sharers = nil
	} else {
		s.logEnd(failed, failed.owner)
	}
	failed.state = acFailed
	failed.owner = 0
	s.settleDrainer(failed)
	// The shrunken pool may make queued requests impossible; settle them
	// before queueing the replacement acquire.
	s.drainQueue()
	if s.classed && !shared {
		// A heterogeneous pool must not hand back just any device: the
		// replacement is the job's failed device by another name, so pick
		// a same-class spare first, then a capability-compatible one.
		if s.policy == Backfill || len(s.queue) == 0 {
			if t := s.migrationTarget(failed); t != nil {
				s.grantOne(t, src, reqID)
				return
			}
		}
		s.reply(src, reqID, statusUnavailable, nil)
		return
	}
	s.acquire(&pendingAcquire{src: src, reqID: reqID, n: 1, shared: shared, enqueued: s.now()}, false)
}

// setState handles fail/repair administrative requests.
func (s *Server) setState(id int, state acState, src int, reqID uint64) {
	a, ok := s.byID[id]
	if !ok {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	s.accrue(s.now())
	// Failing an assigned or shared accelerator is the paper's
	// fault-tolerance property: the compute nodes survive and discover
	// the failure on next use or at release (the sharer map is kept so
	// those releases still validate).
	if state == acFree {
		// Administrative repair returns any out-of-service accelerator
		// (failed, suspect, retired) to the pool, presumed clean.
		if a.owner != 0 {
			s.logEnd(a, a.owner)
		}
		for _, rk := range sortedSharerRanks(a) {
			s.logEnd(a, rk)
		}
		a.owner = 0
		a.sharers = nil
		a.dirty = false
		a.draining = false
		if s.lastBeat != nil {
			s.lastBeat[a.rank] = s.now()
		}
	}
	a.state = state
	if state == acFailed {
		s.settleDrainer(a)
	}
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue()
}

// snapshot accrues the time integrals and summarizes the pool. Shared
// accelerators count under Assigned so the legacy partition of Total
// (free + assigned + failed + suspect + retired) is unchanged.
func (s *Server) snapshot(now sim.Time) PoolStats {
	s.accrue(now)
	st := PoolStats{
		Total:      len(s.accels),
		Queued:     len(s.queue),
		Acquires:   s.acquireCount,
		Releases:   s.releaseCount,
		Reclaimed:  s.reclaimedCount,
		Migrations: s.migrateCount,

		BusySeconds: s.busySeconds,
		WaitSeconds: s.waitSeconds,
	}
	for _, a := range s.accels {
		switch a.state {
		case acFree:
			st.Free++
		case acAssigned:
			st.Assigned++
		case acShared:
			st.Assigned++
			st.Shared++
			st.Sessions += len(a.sharers)
		case acFailed:
			st.Failed++
		case acSuspect, acReclaiming:
			st.Suspect++
		case acRetired:
			st.Retired++
		}
	}
	return st
}

// encodeLegacyStats writes the original opStats reply layout, which is
// byte-for-byte unchanged by the sharing work.
func encodeLegacyStats(w *wire.Writer, st PoolStats) {
	w.Int(st.Total).Int(st.Free).Int(st.Assigned).Int(st.Failed).Int(st.Queued)
	w.Int(st.Acquires).Int(st.Releases).F64(st.BusySeconds).F64(st.WaitSeconds)
	w.Int(st.Suspect).Int(st.Retired).Int(st.Reclaimed).Int(st.Migrations)
}

func (s *Server) encodeStats(now sim.Time) []byte {
	w := wire.NewWriter(96)
	encodeLegacyStats(w, s.snapshot(now))
	return w.Bytes()
}

// encodeStatsEx appends the sharing counters and the per-accelerator
// utilization table to the legacy layout.
func (s *Server) encodeStatsEx(now sim.Time) []byte {
	st := s.snapshot(now)
	w := wire.NewWriter(96 + 56*len(s.accels))
	encodeLegacyStats(w, st)
	w.Int(st.Shared).Int(st.Sessions)
	w.Int(len(s.accels))
	for _, a := range s.accels {
		w.Int(a.id).Int(a.rank).Str(a.state.String())
		w.Int(a.holders()).Int(a.grants)
		w.F64(a.busySeconds).F64(a.waitSeconds)
	}
	if s.classed {
		// Per-accelerator device classes, one per table row in order — an
		// appended trailer so untagged fleets keep the legacy bytes.
		for _, a := range s.accels {
			w.Str(a.cap.Class)
		}
	}
	return w.Bytes()
}

func decodeLegacyStats(r *wire.Reader) PoolStats {
	st := PoolStats{
		Total:    r.Int(),
		Free:     r.Int(),
		Assigned: r.Int(),
		Failed:   r.Int(),
		Queued:   r.Int(),
		Acquires: r.Int(),
		Releases: r.Int(),
	}
	st.BusySeconds = r.F64()
	st.WaitSeconds = r.F64()
	st.Suspect = r.Int()
	st.Retired = r.Int()
	st.Reclaimed = r.Int()
	st.Migrations = r.Int()
	return st
}

func decodeStats(body []byte) (PoolStats, error) {
	r := wire.NewReader(body)
	st := decodeLegacyStats(r)
	return st, r.Err()
}

func decodeStatsEx(body []byte) (PoolStats, error) {
	r := wire.NewReader(body)
	st := decodeLegacyStats(r)
	st.Shared = r.Int()
	st.Sessions = r.Int()
	count := r.Int()
	if err := r.Err(); err != nil {
		return PoolStats{}, err
	}
	st.PerAccel = make([]AccelStats, 0, count)
	for i := 0; i < count; i++ {
		as := AccelStats{ID: r.Int(), Rank: r.Int(), State: r.Str()}
		as.Sessions = r.Int()
		as.Grants = r.Int()
		as.BusySeconds = r.F64()
		as.WaitSeconds = r.F64()
		st.PerAccel = append(st.PerAccel, as)
	}
	if r.Remaining() > 0 { // classed trailer: device class per row
		for i := range st.PerAccel {
			st.PerAccel[i].Class = r.Str()
		}
	}
	return st, r.Err()
}
