package arm

// ring.go implements the consistent-hash ring that partitions accelerator
// ownership across ARM shards. Each shard projects a fixed number of
// virtual points onto a 64-bit circle; an accelerator id is owned by the
// shard whose point follows the id's hash. Because a ring with k shards
// contains exactly the points of the (k+1)-shard ring minus shard k's
// points, growing or shrinking the shard count only moves the keys that
// land on the added/removed shard — every other id keeps its owner. That
// property is what lets a cluster restripe with ~1/N of the leases
// instead of all of them, and the property tests in ring_test.go pin it.

// ringVnodes is the number of virtual points per shard. 64 keeps the
// per-shard load imbalance within a few percent for the shard counts the
// simulator runs (≤ 16) while the whole ring still fits in one cache
// page per shard.
const ringVnodes = 64

type ringPoint struct {
	hash  uint64
	shard int
}

// Ring maps accelerator ids onto shard indices [0, Shards).
type Ring struct {
	shards int
	points []ringPoint // sorted by (hash, shard)
}

// NewRing builds the ring for the given shard count (clamped to >= 1).
func NewRing(shards int) *Ring {
	if shards < 1 {
		shards = 1
	}
	r := &Ring{shards: shards, points: make([]ringPoint, 0, shards*ringVnodes)}
	for s := 0; s < shards; s++ {
		for v := 0; v < ringVnodes; v++ {
			r.points = append(r.points, ringPoint{hash: pointHash(s, v), shard: s})
		}
	}
	// Insertion sort domains this small lose to the stdlib, but sorting
	// happens once per ring; ties break on shard index so ownership is
	// deterministic and stable under grow/shrink.
	sortRingPoints(r.points)
	return r
}

// Shards returns the shard count the ring was built for.
func (r *Ring) Shards() int { return r.shards }

// Owner returns the shard that owns accelerator id. The lookup is a
// branch-free-ish binary search over the point array and performs no
// allocation: it sits on the request-routing hot path of every sharded
// acquire, release, and heartbeat.
func (r *Ring) Owner(id int) int {
	h := keyHash(id)
	// First point with hash > h, wrapping to 0 past the end.
	lo, hi := 0, len(r.points)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if r.points[mid].hash <= h {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == len(r.points) {
		lo = 0
	}
	return r.points[lo].shard
}

// pointHash positions virtual point v of shard s on the circle. The
// shard/vnode coordinates are packed into disjoint bit ranges before
// mixing so distinct points never collide pre-mix.
func pointHash(s, v int) uint64 {
	return mix64(1<<63 | uint64(s)<<24 | uint64(v))
}

// keyHash positions accelerator id on the circle, in a domain disjoint
// from the points'.
func keyHash(id int) uint64 {
	return mix64(uint64(id))
}

// mix64 is the splitmix64 finalizer: a cheap, well-distributed 64-bit
// mixer with no allocations and no table lookups.
func mix64(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// sortRingPoints orders points by hash, breaking ties by shard. A hand
// written heapsort keeps the package free of sort.Slice's closure
// allocation without pulling in generics churn; rings are tiny and built
// once, so asymptotics are irrelevant.
func sortRingPoints(ps []ringPoint) {
	n := len(ps)
	for i := n/2 - 1; i >= 0; i-- {
		siftRingPoint(ps, i, n)
	}
	for i := n - 1; i > 0; i-- {
		ps[0], ps[i] = ps[i], ps[0]
		siftRingPoint(ps, 0, i)
	}
}

func siftRingPoint(ps []ringPoint, root, n int) {
	for {
		child := 2*root + 1
		if child >= n {
			return
		}
		if child+1 < n && ringPointLess(ps[child], ps[child+1]) {
			child++
		}
		if !ringPointLess(ps[root], ps[child]) {
			return
		}
		ps[root], ps[child] = ps[child], ps[root]
		root = child
	}
}

func ringPointLess(a, b ringPoint) bool {
	if a.hash != b.hash {
		return a.hash < b.hash
	}
	return a.shard < b.shard
}
