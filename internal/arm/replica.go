package arm

// replica.go replicates a shard leader's lease/ownership/session table
// to a follower by log shipping over the existing wire protocol
// (TagReplicate), so an ARM crash no longer strands leases. The stream
// is simple effect-record shipping rather than an operation log: after
// every handled request and every detector tick the leader sends its
// full per-accelerator state (id, rank, lifecycle state, owner, sharer
// ranks, drain/remove flags) plus the replies issued since the last
// shipment. At the simulated fleet's scale a shard owns a handful of
// accelerators, so a full snapshot costs less than the bookkeeping a
// diff protocol would need, and it is trivially idempotent.
//
// The follower applies the stream silently. Silence on the stream for
// PromoteAfter (the PR 2 failure detector threshold, DeadAfter by
// default) means the leader is dead: the follower flips the shared
// Directory to itself, re-arms every replicated lease with a fresh TTL
// (grace for holders to re-resolve and renew), grants every daemon a
// fresh heartbeat budget, and enters the normal Server loop. Clients
// re-resolve via the directory and replay in-flight requests with their
// original reqIDs; the shipped reply records let the promoted follower
// answer already-executed requests from cache instead of executing them
// twice.
//
// What is deliberately NOT replicated (documented in DESIGN.md §11):
// queued blocking acquires (clients replay them), lease expiry times
// (re-armed fresh on promotion), and the utilization counters
// (BusySeconds and friends restart from zero after a failover).

import (
	"fmt"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// ship sends the current state snapshot and pending reply records to the
// follower. A no-op unless replication is configured; called after every
// request, detector tick, and helper-process completion that can mutate
// state, and once per shard tick as a liveness beat even when idle.
func (s *Server) ship() {
	if !s.replicated || s.closed || s.abdicated {
		return
	}
	w := s.repW.Reset()
	s.repSeq++
	w.U64(s.repSeq)
	w.Int(len(s.accels))
	for _, a := range s.accels {
		w.Int(a.id).Int(a.rank).U8(uint8(a.state)).Int(a.owner)
		var fl uint8
		if a.draining {
			fl |= 1
		}
		if a.removing {
			fl |= 2
		}
		if a.dirty {
			fl |= 4
		}
		w.U8(fl)
		if len(a.sharers) == 0 {
			w.Int(0)
		} else {
			w.Ints(sortedSharerRanks(a))
		}
	}
	w.Int(len(s.repReplies))
	for _, rr := range s.repReplies {
		w.Int(rr.dst).U64(rr.reqID).Blob(rr.msg)
	}
	s.repReplies = s.repReplies[:0]
	if s.classed {
		// Capability descriptors, so a promoted follower can keep making
		// class-aware placement and migration decisions. Appended after
		// the legacy sections: untagged fleets ship the legacy bytes.
		w.Int(len(s.accels))
		for _, a := range s.accels {
			w.Int(a.id)
			encodeCapability(w, a.cap)
		}
	}
	s.comm.Isend(s.followerRank, TagReplicate, w.CopyBytes())
}

// Replica is a shard follower: it applies the leader's replication
// stream and promotes itself into a serving Server when the stream goes
// silent.
type Replica struct {
	srv          *Server
	dir          *Directory
	shard        int
	promoteAfter sim.Duration
	promoted     bool
	stopped      bool
	onPromote    func(s *Server)
}

// ReplicaFor builds the follower replica for the given shard. The
// embedded server is constructed exactly as the leader's (same
// inventory, options, and directory) but stays passive until promotion.
// promoteAfter is the stream-silence threshold; <= 0 uses the health
// config's DeadAfter, falling back to the default health config's.
func ReplicaFor(comm *minimpi.Comm, dir *Directory, shard int, inventory []Handle, opts Options, promoteAfter sim.Duration) (*Replica, error) {
	opts.Directory = dir
	opts.Shard = shard
	opts.Shards = dir.Shards()
	if dir.Follower(shard) != comm.Rank() {
		return nil, fmt.Errorf("arm: replica rank %d is not shard %d's follower %d",
			comm.Rank(), shard, dir.Follower(shard))
	}
	srv, err := NewServerOpts(comm, inventory, opts)
	if err != nil {
		return nil, err
	}
	return &Replica{srv: srv, dir: dir, shard: shard, promoteAfter: promoteAfter}, nil
}

// Server exposes the embedded server so the cluster can configure health,
// sanitizers, and reapers on it before promotion ever happens.
func (rp *Replica) Server() *Server { return rp.srv }

// Promoted reports whether the replica has taken over its shard.
func (rp *Replica) Promoted() bool { return rp.promoted }

// Stop shuts down an un-promoted standby cleanly at teardown: it kills
// the embedded server's processes (including the Run loop blocked on the
// replication stream) and marks the replica so a racing stream timeout
// cannot promote it afterwards. A no-op once the replica has promoted —
// a serving server is shut down through the normal Shutdown op instead.
func (rp *Replica) Stop() {
	if rp.stopped || rp.promoted {
		return
	}
	rp.stopped = true
	rp.srv.Kill()
}

// OnPromote installs a hook run at promotion, before the replica starts
// serving (the cluster uses it to flip monitoring to the new rank).
func (rp *Replica) OnPromote(fn func(s *Server)) { rp.onPromote = fn }

// silenceThreshold resolves the promotion timeout.
func (rp *Replica) silenceThreshold() sim.Duration {
	if rp.promoteAfter > 0 {
		return rp.promoteAfter
	}
	if rp.srv.healthOn && rp.srv.health.DeadAfter > 0 {
		return rp.srv.health.DeadAfter
	}
	return DefaultHealthConfig().DeadAfter
}

// Run applies the replication stream until the leader goes silent, then
// promotes and serves. Spawn it as the follower rank's process; at
// simulation teardown an un-promoted replica must be killed (the cluster
// does this), exactly like the standby process it models.
func (rp *Replica) Run(p *sim.Proc) {
	s := rp.srv
	s.mainProc = p
	leader := rp.dir.Leader(rp.shard)
	threshold := rp.silenceThreshold()
	for {
		req := s.comm.Irecv(leader, TagReplicate)
		data, _, ok := req.WaitTimeout(p, threshold)
		if !ok {
			req.Cancel()
			break // leader silent past the detector threshold: take over
		}
		rp.apply(data)
	}
	if rp.stopped || s.closed {
		return // teardown Stop raced the silence timeout: do not promote
	}
	rp.promoted = true
	rp.dir.Promote(rp.shard)
	// Serve under the epoch the promotion just minted: every grant,
	// gossip message, and fencer RPC from here on carries it.
	s.myEpoch = rp.dir.Epoch(rp.shard)
	if rp.onPromote != nil {
		rp.onPromote(s) // wire sanitizer/reaper/fencer before any reclaim runs
	}
	rp.rearm()
	s.Run(p)
}

// apply replays one shipped snapshot into the passive server state.
func (rp *Replica) apply(data []byte) {
	s := rp.srv
	r := wire.NewReader(data)
	r.U64() // seq: the stream is ordered and complete in-sim; kept for debugging
	n := r.Int()
	if r.Err() != nil {
		return
	}
	seen := make(map[int]bool, n)
	for i := 0; i < n; i++ {
		id := r.Int()
		rank := r.Int()
		state := acState(r.U8())
		owner := r.Int()
		fl := r.U8()
		sharers := r.Ints()
		if r.Err() != nil {
			return
		}
		seen[id] = true
		a := s.byID[id]
		if a == nil {
			// Elastic grow on the leader: mirror the registration.
			a = &accel{id: id, rank: rank}
			s.accels = append(s.accels, a)
			s.byID[id] = a
		}
		a.rank = rank
		a.state = state
		a.owner = owner
		a.draining = fl&1 != 0
		a.removing = fl&2 != 0
		a.dirty = fl&4 != 0
		if len(sharers) == 0 {
			a.sharers = nil
		} else {
			a.sharers = make(map[int]sim.Time, len(sharers))
			for _, rk := range sharers {
				a.sharers[rk] = 0 // leases re-arm at promotion
			}
		}
	}
	// Elastic shrink on the leader: drop accelerators it no longer has.
	for _, a := range append([]*accel(nil), s.accels...) {
		if !seen[a.id] {
			s.removeAccel(a)
		}
	}
	nr := r.Int()
	for i := 0; i < nr; i++ {
		dst := r.Int()
		reqID := r.U64()
		msg := r.Blob()
		if r.Err() != nil {
			return
		}
		// The blob aliases the message buffer; copy so the cache owns it.
		s.rememberReply(dst, reqID, append([]byte(nil), msg...))
	}
	if r.Remaining() > 0 {
		// Classed trailer: capability descriptors per accelerator.
		nc := r.Int()
		for i := 0; i < nc; i++ {
			id := r.Int()
			cap := decodeCapability(r)
			if r.Err() != nil {
				return
			}
			if a := s.byID[id]; a != nil {
				a.cap = cap
			}
		}
		s.updateClassed()
	}
}

// rearm gives the replicated leases a fresh TTL so surviving holders get
// a full budget to re-resolve and renew after the failover, and fences
// the shard's daemons under the new epoch (DESIGN.md §12).
//
// Fencing happens on two paths, both before the promoted leader can
// grant anything from the free pool:
//   - every daemon rank the shard knows gets a fencer RPC carrying the
//     new epoch, so tokens minted by the deposed leader are rejected
//     from the moment the RPC lands;
//   - every free accelerator is marked dirty and routed through
//     sanitize-before-reuse, so it re-enters the pool only after a
//     fence-tokened device reset completes. A grant therefore cannot
//     precede the fence on its own daemon even if the broadcast RPC to
//     that rank is still in flight.
//
// Carried-over assigned/shared holds are re-opened in the grant ledger
// under the new epoch: the holder kept the device across the failover,
// and the checker must see the continuation rather than an unexplained
// live hold from a dead epoch.
func (rp *Replica) rearm() {
	s := rp.srv
	now := s.now()
	var lease sim.Time
	if s.healthOn && s.health.LeaseTTL > 0 {
		lease = now.Add(s.health.LeaseTTL)
	}
	fenced := make(map[int]bool)
	for _, a := range s.accels {
		if s.fencer != nil && !fenced[a.rank] {
			fenced[a.rank] = true
			rank, epoch := a.rank, s.myEpoch
			s.spawnTracked(fmt.Sprintf("arm-fence-d%d", rank), func(p *sim.Proc) {
				if err := s.fencer(p, rank, epoch); err != nil {
					// Only a yet-higher epoch refuses a fence: we were
					// deposed in turn while fencing our predecessor's.
					s.stepDown(epoch + 1)
				}
			})
		}
		if a.state == acAssigned {
			a.lease = lease
			s.logGrant(a, a.owner, false)
		}
		for _, rk := range sortedSharerRanks(a) {
			a.sharers[rk] = lease
			s.logGrant(a, rk, true)
		}
		// A sanitize that was in flight on the dead leader is lost with
		// it; restart the reclaim from scratch.
		if a.state == acReclaiming {
			a.dirty = true
			s.sanitizeOrSettle(a)
		}
		// Quarantine the free pool behind a fence-tokened reset when
		// sanitize-before-reuse is available; settle() returns each one
		// to service once its daemon provably rejects stale tokens.
		if a.state == acFree && s.healthOn && s.sanitizer != nil {
			a.dirty = true
			s.sanitizeOrSettle(a)
		}
	}
}
