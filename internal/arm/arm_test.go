package arm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// pool builds a world with one ARM rank (rank 0) serving nAC accelerators
// and nCN client ranks (1..nCN), runs each client function, and shuts the
// ARM down when all clients finish.
func pool(t *testing.T, nAC, nCN int, policy Policy, client func(p *sim.Proc, c *Client, rank int)) {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, nCN+1, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	var inventory []Handle
	for i := 0; i < nAC; i++ {
		// Daemon ranks do not exist in this control-plane-only test world;
		// use a synthetic rank value.
		inventory = append(inventory, Handle{ID: i, Rank: 100 + i})
	}
	srv, err := NewServer(w.Comm(0), inventory, policy)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("arm", srv.Run)
	var procs []*sim.Proc
	for r := 1; r <= nCN; r++ {
		r := r
		procs = append(procs, s.Spawn(fmt.Sprintf("cn%d", r), func(p *sim.Proc) {
			client(p, NewClient(w.Comm(r), 0), r)
		}))
	}
	s.Spawn("closer", func(p *sim.Proc) {
		for _, cp := range procs {
			cp.Done().Await(p)
		}
		if err := NewClient(w.Comm(1), 0).Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestAcquireReleaseRoundTrip(t *testing.T) {
	pool(t, 3, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		handles, err := c.Acquire(p, 2, false)
		if err != nil {
			t.Fatalf("acquire: %v", err)
		}
		if len(handles) != 2 {
			t.Fatalf("got %d handles", len(handles))
		}
		if handles[0].ID == handles[1].ID {
			t.Fatal("duplicate handle")
		}
		for _, h := range handles {
			if h.Rank != 100+h.ID {
				t.Errorf("handle %d has rank %d", h.ID, h.Rank)
			}
		}
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Free != 1 || st.Assigned != 2 || st.Total != 3 {
			t.Errorf("stats = %+v", st)
		}
		if err := c.Release(p, handles); err != nil {
			t.Fatalf("release: %v", err)
		}
		st, _ = c.Stats(p)
		if st.Free != 3 || st.Assigned != 0 {
			t.Errorf("stats after release = %+v", st)
		}
	})
}

func TestNonBlockingAcquireUnavailable(t *testing.T) {
	pool(t, 2, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		h1, err := c.Acquire(p, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.Acquire(p, 1, false); !errors.Is(err, ErrUnavailable) {
			t.Errorf("err = %v, want ErrUnavailable", err)
		}
		if err := c.Release(p, h1); err != nil {
			t.Fatal(err)
		}
	})
}

func TestImpossibleRequestRejectedBothModes(t *testing.T) {
	pool(t, 2, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		if _, err := c.Acquire(p, 3, false); !errors.Is(err, ErrImpossible) {
			t.Errorf("non-blocking: %v", err)
		}
		if _, err := c.Acquire(p, 3, true); !errors.Is(err, ErrImpossible) {
			t.Errorf("blocking: %v", err)
		}
		if _, err := c.Acquire(p, 0, false); !errors.Is(err, ErrBadRequest) {
			t.Errorf("zero: %v", err)
		}
	})
}

func TestBlockingAcquireWaitsForRelease(t *testing.T) {
	var acquiredAt, releasedAt sim.Time
	pool(t, 1, 2, FIFO, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			h, err := c.Acquire(p, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			p.Wait(5 * sim.Millisecond)
			releasedAt = p.Now()
			if err := c.Release(p, h); err != nil {
				t.Fatal(err)
			}
		case 2:
			p.Wait(sim.Millisecond) // ensure rank 1 holds it
			h, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Fatal(err)
			}
			acquiredAt = p.Now()
			c.Release(p, h)
		}
	})
	if acquiredAt < releasedAt {
		t.Errorf("blocking acquire satisfied at %v before release at %v", acquiredAt, releasedAt)
	}
}

func TestExclusiveAssignmentAcrossClients(t *testing.T) {
	// 4 clients each grab 1 of 2 accelerators repeatedly; no two clients
	// may hold the same accelerator simultaneously.
	holders := make(map[int]int)
	pool(t, 2, 4, FIFO, func(p *sim.Proc, c *Client, rank int) {
		for i := 0; i < 5; i++ {
			h, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Fatalf("rank %d: %v", rank, err)
			}
			id := h[0].ID
			if prev, held := holders[id]; held {
				t.Fatalf("accelerator %d double-assigned to %d and %d", id, prev, rank)
			}
			holders[id] = rank
			p.Wait(sim.Duration(rank) * 100 * sim.Microsecond)
			delete(holders, id)
			if err := c.Release(p, h); err != nil {
				t.Fatal(err)
			}
		}
	})
}

func TestReleaseNotOwnedRejected(t *testing.T) {
	pool(t, 2, 2, FIFO, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			h, err := c.Acquire(p, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			p.Wait(10 * sim.Millisecond)
			c.Release(p, h)
		case 2:
			p.Wait(sim.Millisecond)
			// Rank 1 owns accelerator 0; stealing its release must fail.
			err := c.Release(p, []Handle{{ID: 0}})
			if !errors.Is(err, ErrBadRequest) {
				t.Errorf("foreign release: %v", err)
			}
			// Releasing a free accelerator must also fail.
			err = c.Release(p, []Handle{{ID: 1}})
			if !errors.Is(err, ErrBadRequest) {
				t.Errorf("free release: %v", err)
			}
		}
	})
}

func TestFIFOOrderingStrict(t *testing.T) {
	// Client 2 asks for 2 (queued), then client 3 asks for 1. Under FIFO,
	// client 3 must not overtake even though 1 accelerator is free.
	var order []int
	pool(t, 2, 3, FIFO, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			h, _ := c.Acquire(p, 1, false) // holds 1, leaving 1 free
			p.Wait(20 * sim.Millisecond)
			c.Release(p, h)
		case 2:
			p.Wait(sim.Millisecond)
			h, err := c.Acquire(p, 2, true)
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, 2)
			c.Release(p, h)
		case 3:
			p.Wait(2 * sim.Millisecond)
			h, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, 3)
			c.Release(p, h)
		}
	})
	if len(order) != 2 || order[0] != 2 || order[1] != 3 {
		t.Errorf("grant order = %v, want [2 3]", order)
	}
}

func TestBackfillOvertakesBlockedHead(t *testing.T) {
	var order []int
	pool(t, 2, 3, Backfill, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			h, _ := c.Acquire(p, 1, false)
			p.Wait(20 * sim.Millisecond)
			c.Release(p, h)
		case 2:
			p.Wait(sim.Millisecond)
			h, err := c.Acquire(p, 2, true)
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, 2)
			c.Release(p, h)
		case 3:
			p.Wait(2 * sim.Millisecond)
			h, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Fatal(err)
			}
			order = append(order, 3)
			p.Wait(sim.Millisecond)
			c.Release(p, h)
		}
	})
	if len(order) != 2 || order[0] != 3 || order[1] != 2 {
		t.Errorf("grant order = %v, want [3 2] (backfill)", order)
	}
}

func TestFailShrinksPoolAndRejectsImpossibleWaiters(t *testing.T) {
	pool(t, 2, 2, FIFO, func(p *sim.Proc, c *Client, rank int) {
		switch rank {
		case 1:
			h, err := c.Acquire(p, 2, false)
			if err != nil {
				t.Fatal(err)
			}
			p.Wait(5 * sim.Millisecond)
			// Mark one failed while assigned; then release both.
			if err := c.Fail(p, h[0].ID); err != nil {
				t.Fatal(err)
			}
			if err := c.Release(p, h); err != nil {
				t.Fatalf("release with failed member: %v", err)
			}
			st, _ := c.Stats(p)
			if st.Failed != 1 || st.Free != 1 {
				t.Errorf("stats = %+v", st)
			}
			// Repair restores it.
			if err := c.Repair(p, h[0].ID); err != nil {
				t.Fatal(err)
			}
			st, _ = c.Stats(p)
			if st.Failed != 0 || st.Free != 2 {
				t.Errorf("stats after repair = %+v", st)
			}
		case 2:
			p.Wait(sim.Millisecond)
			// Queued request for 2 becomes impossible when one fails.
			_, err := c.Acquire(p, 2, true)
			if !errors.Is(err, ErrImpossible) {
				t.Errorf("waiter got %v, want ErrImpossible", err)
			}
		}
	})
}

func TestFailUnknownIDRejected(t *testing.T) {
	pool(t, 1, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		if err := c.Fail(p, 99); !errors.Is(err, ErrBadRequest) {
			t.Errorf("err = %v", err)
		}
	})
}

func TestUtilizationAccounting(t *testing.T) {
	pool(t, 2, 1, FIFO, func(p *sim.Proc, c *Client, rank int) {
		h, err := c.Acquire(p, 2, false)
		if err != nil {
			t.Fatal(err)
		}
		p.Wait(sim.Second)
		if err := c.Release(p, h); err != nil {
			t.Fatal(err)
		}
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		// 2 accelerators for ~1 second => ~2 busy-seconds.
		if st.BusySeconds < 1.99 || st.BusySeconds > 2.01 {
			t.Errorf("BusySeconds = %v, want ~2", st.BusySeconds)
		}
		util := st.Utilization(p.Now().Sub(0))
		if util < 0.9 || util > 1.0 {
			t.Errorf("utilization = %v", util)
		}
		if st.Acquires != 1 || st.Releases != 1 {
			t.Errorf("counters = %+v", st)
		}
	})
}

func TestNewServerRejectsDuplicateIDs(t *testing.T) {
	s := sim.New()
	w, _ := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
	_, err := NewServer(w.Comm(0), []Handle{{ID: 1}, {ID: 1}}, FIFO)
	if err == nil {
		t.Fatal("duplicate inventory accepted")
	}
}

func TestPolicyString(t *testing.T) {
	if FIFO.String() != "fifo" || Backfill.String() != "backfill" {
		t.Error("policy names")
	}
	if Policy(9).String() == "" {
		t.Error("unknown policy string empty")
	}
}

// Property: under random acquire/release traffic from several clients, the
// ARM never double-assigns and pool accounting stays consistent.
func TestPropertyNoDoubleAssignment(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAC := 1 + rng.Intn(4)
		nCN := 1 + rng.Intn(4)
		ok := true
		held := make(map[int]int) // accel id -> holder rank
		pool(t, nAC, nCN, Policy(rng.Intn(2)), func(p *sim.Proc, c *Client, rank int) {
			lrng := rand.New(rand.NewSource(seed + int64(rank)))
			for i := 0; i < 6; i++ {
				n := 1 + lrng.Intn(nAC)
				handles, err := c.Acquire(p, n, true)
				if err != nil {
					ok = false
					return
				}
				for _, h := range handles {
					if _, taken := held[h.ID]; taken {
						ok = false
					}
					held[h.ID] = rank
				}
				p.Wait(sim.Duration(lrng.Intn(1000)) * sim.Microsecond)
				for _, h := range handles {
					delete(held, h.ID)
				}
				if err := c.Release(p, handles); err != nil {
					ok = false
					return
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}
