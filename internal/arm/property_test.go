package arm

// Randomized invariants over the ARM's bookkeeping (testing/quick):
// under any interleaving of acquire / release / replace / repair, the
// pool partition Free+Assigned+Failed == Total holds, no accelerator is
// ever assigned twice, and FIFO queues grant strictly in arrival order.

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"

	"dynacc/internal/sim"
)

func TestPropertyPoolPartitionInvariant(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nAC := 2 + rng.Intn(4)
		ok := true
		pool(t, nAC, 1, Policy(rng.Intn(2)), func(p *sim.Proc, c *Client, rank int) {
			lrng := rand.New(rand.NewSource(seed ^ 0x5a5a))
			var held []Handle
			heldIDs := make(map[int]bool)
			var failedIDs []int
			check := func() {
				st, err := c.Stats(p)
				if err != nil {
					ok = false
					return
				}
				if st.Total != nAC || st.Free+st.Assigned+st.Failed != st.Total {
					t.Errorf("partition broken: %+v", st)
					ok = false
				}
				if st.Assigned != len(held) || st.Failed != len(failedIDs) {
					t.Errorf("books disagree: %+v, held %d, failed %d", st, len(held), len(failedIDs))
					ok = false
				}
			}
			free := func() int { return nAC - len(held) - len(failedIDs) }
			for i := 0; i < 12 && ok; i++ {
				switch lrng.Intn(4) {
				case 0: // acquire one more
					hs, err := c.Acquire(p, 1, false)
					switch {
					case err == nil:
						for _, h := range hs {
							if heldIDs[h.ID] {
								t.Errorf("accel %d assigned twice", h.ID)
								ok = false
							}
							heldIDs[h.ID] = true
						}
						held = append(held, hs...)
					case errors.Is(err, ErrUnavailable) || errors.Is(err, ErrImpossible):
						if free() > 0 && errors.Is(err, ErrUnavailable) {
							t.Errorf("unavailable with %d free", free())
							ok = false
						}
					default:
						t.Errorf("acquire: %v", err)
						ok = false
					}
				case 1: // release the oldest holding
					if len(held) == 0 {
						continue
					}
					if err := c.Release(p, held[:1]); err != nil {
						t.Errorf("release: %v", err)
						ok = false
					}
					delete(heldIDs, held[0].ID)
					held = held[1:]
				case 2: // report a failure, get a replacement
					// Only when a spare exists: a blocking replace with no
					// free accelerator and no other client would wait forever.
					if len(held) == 0 || free() == 0 {
						continue
					}
					old := held[0]
					h, err := c.Replace(p, old.Rank)
					if err != nil {
						t.Errorf("replace: %v", err)
						ok = false
						continue
					}
					if heldIDs[h.ID] {
						t.Errorf("replacement %d already assigned", h.ID)
						ok = false
					}
					delete(heldIDs, old.ID)
					heldIDs[h.ID] = true
					held[0] = h
					failedIDs = append(failedIDs, old.ID)
				case 3: // repair the oldest failure
					if len(failedIDs) == 0 {
						continue
					}
					if err := c.Repair(p, failedIDs[0]); err != nil {
						t.Errorf("repair: %v", err)
						ok = false
					}
					failedIDs = failedIDs[1:]
				}
				check()
			}
			// Drain so the pool teardown sees a consistent state.
			if len(held) > 0 {
				if err := c.Release(p, held); err != nil {
					t.Errorf("final release: %v", err)
					ok = false
				}
			}
		})
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestPropertyFIFOGrantOrder(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		nCN := 2 + rng.Intn(5)
		// Distinct arrival offsets, far apart compared to network latency,
		// randomly assigned to ranks.
		delays := rng.Perm(nCN)
		var order []int
		ok := true
		pool(t, 1, nCN, FIFO, func(p *sim.Proc, c *Client, rank int) {
			d := delays[rank-1]
			p.Wait(sim.Duration(d+1) * sim.Millisecond)
			hs, err := c.Acquire(p, 1, true)
			if err != nil {
				ok = false
				return
			}
			order = append(order, d)
			p.Wait(500 * sim.Microsecond)
			if err := c.Release(p, hs); err != nil {
				ok = false
			}
		})
		if len(order) != nCN {
			return false
		}
		for i := 1; i < len(order); i++ {
			if order[i] < order[i-1] {
				t.Errorf("FIFO violated: grant order %v", order)
				return false
			}
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
