package arm

// shardclient.go is the client side of the sharded ARM: a drop-in
// replacement for Client that routes every operation to the owning shard
// via the shared Directory. Replies are received with an any-source
// Irecv, because the shard that answers is not always the shard that was
// asked (peer forwarding and least-loaded fallback reply directly from
// the executing shard). When shards have follower replicas, calls use a
// failover timeout: on silence past the promotion threshold the client
// re-resolves the shard's serving rank from the directory and replays
// the request with its original reqID — the server-side dedup cache
// turns an already-answered replay into a resend, never a re-execution.

import (
	"fmt"
	"math/rand"
	"sort"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// API is the resource-management surface shared by the single-manager
// Client and the ShardedClient, so cluster plumbing and tests can treat
// either uniformly.
type API interface {
	Acquire(p *sim.Proc, n int, blocking bool) ([]Handle, error)
	AcquireCapable(p *sim.Proc, n int, blocking bool, constraint Constraint) ([]Handle, error)
	AcquireShared(p *sim.Proc, n int, blocking bool) ([]Handle, error)
	AcquireRetry(p *sim.Proc, n, attempts int, b Backoff, rng *rand.Rand) ([]Handle, error)
	Release(p *sim.Proc, handles []Handle) error
	Replace(p *sim.Proc, failedRank int) (Handle, error)
	Stats(p *sim.Proc) (PoolStats, error)
	StatsEx(p *sim.Proc) (PoolStats, error)
	Fail(p *sim.Proc, id int) error
	Repair(p *sim.Proc, id int) error
	Renew(p *sim.Proc) error
	Drain(p *sim.Proc, id int, deadline sim.Duration) error
	Migrate(p *sim.Proc, oldRank int) (Handle, error)
	Register(p *sim.Proc, id, rank int) error
	RegisterCapable(p *sim.Proc, id, rank int, cap Capability) error
	Retire(p *sim.Proc, id int, deadline sim.Duration) error
	Shutdown(p *sim.Proc) error
	RecvNotice(p *sim.Proc) (Notice, error)
}

var (
	_ API = (*Client)(nil)
	_ API = (*ShardedClient)(nil)
)

// ShardedClient talks to a fleet of ARM shards through the shared
// directory. Like Client, it is bound to one communicator rank and must
// not be shared between concurrently blocking processes.
type ShardedClient struct {
	comm    *minimpi.Comm
	dir     *Directory
	nextReq uint64
	rng     *rand.Rand
	backoff Backoff

	// failTimeout > 0 arms failover: a call silent for this long
	// re-checks the directory and replays to a promoted follower. Zero
	// (set when no shard has a replica) waits indefinitely, like Client.
	failTimeout sim.Duration
	maxSilence  int // give up after this many consecutive timeouts

	groups [][]int // per-shard id scratch for Release routing (reused)
}

// NewShardedClient builds a client over the directory. Failover timeouts
// arm automatically when at least one shard has a follower replica.
func NewShardedClient(comm *minimpi.Comm, dir *Directory) *ShardedClient {
	sc := &ShardedClient{
		comm:    comm,
		dir:     dir,
		rng:     rand.New(rand.NewSource(int64(comm.Rank())*7919 + 1)),
		backoff: DefaultBackoff(),
		groups:  make([][]int, dir.Shards()),
	}
	for sh := 0; sh < dir.Shards(); sh++ {
		if dir.Follower(sh) >= 0 {
			sc.failTimeout = 2 * DefaultHealthConfig().DeadAfter
			sc.maxSilence = 64
			break
		}
	}
	return sc
}

// SetFailover overrides the failover silence threshold (0 disables) and
// the consecutive-timeout budget before a call errors out.
func (sc *ShardedClient) SetFailover(timeout sim.Duration, maxSilence int) {
	sc.failTimeout = timeout
	sc.maxSilence = maxSilence
}

// homeShard spreads clients across shards for operations with no natural
// owner (acquires, renews with one target).
func (sc *ShardedClient) homeShard() int {
	return int(mix64(uint64(sc.comm.Rank())) % uint64(sc.dir.Shards()))
}

func acquireOp(op uint8) bool {
	return op == opAcquire || op == opAcquireShared || op == opAcquireCapable
}

// callShard performs one request/reply round trip against a shard, with
// directory-driven failover replay when armed and fencing-driven replay
// always: every request travels in an opEpoched envelope carrying the
// client's directory view of the shard's epoch, and a statusFenced
// reply (the server we reached has been deposed) re-resolves the
// serving rank and replays with the original reqID — the dedup cache
// makes the replay a resend when the successor already executed it.
// The returned epoch is the answering server's epoch hint from the
// reply trailer, stamped into Handles as the fencing token.
func (sc *ShardedClient) callShard(p *sim.Proc, shard int, op uint8, args func(w *wire.Writer)) (uint8, []byte, uint64, error) {
	sc.nextReq++
	reqID := sc.nextReq
	build := func(replay bool) []byte {
		w := wire.NewWriter(64)
		// Epoched envelope: the id slot carries the epoch the client
		// believes the shard is serving under (re-read at every send, so
		// a fenced replay carries the successor's epoch).
		w.U8(opEpoched).U64(sc.dir.Epoch(shard))
		w.U8(op).U64(reqID)
		if args != nil {
			args(w)
		}
		if acquireOp(op) {
			// Trailing replay marker (absent in legacy traffic): tells a
			// promoted follower to recall its peers before executing.
			if replay {
				w.U8(1)
			} else {
				w.U8(0)
			}
		}
		return w.Bytes()
	}
	const maxFenceReplays = 4
	for fenceReplays := 0; ; fenceReplays++ {
		// Any shard may answer (forwarding replies directly), so match any
		// source on the reply tag; reqIDs are unique per client, so the tag
		// cannot collide.
		resp := sc.comm.Irecv(minimpi.AnySource, tagReplyBase+minimpi.Tag(reqID))
		served := sc.dir.Serving(shard)
		sc.comm.Isend(served, TagRequest, build(fenceReplays > 0))
		var data []byte
		if sc.failTimeout <= 0 {
			data, _ = resp.Wait(p)
		} else {
			silent := 0
			for {
				d, _, ok := resp.WaitTimeout(p, sc.failTimeout)
				if ok {
					data = d
					break
				}
				silent++
				if silent > sc.maxSilence {
					resp.Cancel()
					return 0, nil, 0, fmt.Errorf("arm: shard %d unresponsive after %d timeouts", shard, silent)
				}
				if cur := sc.dir.Serving(shard); cur != served {
					// The shard failed over: replay at the promoted follower
					// with the same reqID (dedup makes this safe).
					served = cur
					sc.comm.Isend(served, TagRequest, build(true))
				}
				// Still the same serving rank: the shard is slow (a delayed
				// drain reply, say), not dead — keep waiting.
			}
		}
		r := wire.NewReader(data)
		status := r.U8()
		payload := r.Blob()
		var epoch uint64
		if r.Remaining() >= 8 {
			epoch = r.U64() // epoch hint trailer (sharded servers only)
		}
		if err := r.Err(); err != nil {
			return 0, nil, 0, fmt.Errorf("arm: malformed reply: %w", err)
		}
		if status == statusFenced {
			if fenceReplays >= maxFenceReplays {
				return 0, nil, 0, fmt.Errorf("arm: shard %d request fenced %d times: %w",
					shard, fenceReplays+1, ErrFenced)
			}
			// A deposed server answered. The directory already names the
			// successor (promotion flips it before anything can fence);
			// replay there under the fresh epoch.
			continue
		}
		return status, payload, epoch, nil
	}
}

func decodeHandles(payload []byte, shared bool, epoch uint64) ([]Handle, error) {
	r := wire.NewReader(payload)
	count := r.Int()
	handles := make([]Handle, 0, count)
	for i := 0; i < count; i++ {
		handles = append(handles, Handle{ID: r.Int(), Rank: r.Int(), Shared: shared, Epoch: epoch})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("arm: malformed acquire reply: %w", err)
	}
	return handles, nil
}

// acquireOnce issues one non-blocking acquire at the given shard (which
// forwards to the least-loaded peer itself when its pool can't satisfy).
func (sc *ShardedClient) acquireOnce(p *sim.Proc, shard, n int, shared, capable bool, constraint Constraint) ([]Handle, error) {
	op := opAcquire
	switch {
	case shared:
		op = opAcquireShared
	case capable:
		op = opAcquireCapable
	}
	status, payload, epoch, err := sc.callShard(p, shard, op, func(w *wire.Writer) {
		w.Int(n).U8(0)
		if capable {
			encodeConstraint(w, constraint)
		}
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	if capable {
		handles, err := decodeCapableHandles(payload)
		for i := range handles {
			handles[i].Epoch = epoch
		}
		return handles, err
	}
	return decodeHandles(payload, shared, epoch)
}

// acquireAny implements blocking and non-blocking acquires over the
// fleet. Sharded blocking is client-paced: the server queues only
// single-shard blocking requests, so here "blocking" means retrying with
// jittered backoff, rotating the target shard, until granted. FIFO
// fairness is therefore per-shard, not global (DESIGN.md §11).
func (sc *ShardedClient) acquireAny(p *sim.Proc, n int, shared, blocking, capable bool, constraint Constraint) ([]Handle, error) {
	const blockingAttempts = 4096 // virtual-seconds of backoff before giving up
	home := sc.homeShard()
	attempts := 1
	if blocking {
		attempts = blockingAttempts
	}
	start := sc.comm.World().Sim().Now()
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.Wait(sc.backoff.Delay(i-1, sc.rng))
		}
		var hs []Handle
		hs, err = sc.acquireOnce(p, (home+i)%sc.dir.Shards(), n, shared, capable, constraint)
		if err == nil || err != ErrUnavailable {
			// Terminal verdicts (grants, ErrNoCapableDevice, ErrImpossible,
			// fencing failures) end the loop; only unavailability retries.
			return hs, err
		}
	}
	if blocking && err == ErrUnavailable {
		// A blocking acquire that exhausted its retry budget is a
		// timeout, not a capacity answer: surface it as one instead of
		// silently giving up with the last ErrUnavailable.
		return nil, &AcquireTimeoutError{
			Attempts: attempts,
			Elapsed:  sc.comm.World().Sim().Now().Sub(start),
		}
	}
	return nil, err
}

// Acquire requests n exclusive accelerators (see Client.Acquire).
func (sc *ShardedClient) Acquire(p *sim.Proc, n int, blocking bool) ([]Handle, error) {
	return sc.acquireAny(p, n, false, blocking, false, Constraint{})
}

// AcquireCapable requests n exclusive accelerators satisfying the
// capability constraint (see Client.AcquireCapable). Class-constrained
// requests route on the per-class free counts the shards gossip.
func (sc *ShardedClient) AcquireCapable(p *sim.Proc, n int, blocking bool, constraint Constraint) ([]Handle, error) {
	return sc.acquireAny(p, n, false, blocking, true, constraint)
}

// AcquireShared requests shared leases on n distinct accelerators (see
// Client.AcquireShared).
func (sc *ShardedClient) AcquireShared(p *sim.Proc, n int, blocking bool) ([]Handle, error) {
	return sc.acquireAny(p, n, true, blocking, false, Constraint{})
}

// AcquireRetry mirrors Client.AcquireRetry over the fleet.
func (sc *ShardedClient) AcquireRetry(p *sim.Proc, n, attempts int, b Backoff, rng *rand.Rand) ([]Handle, error) {
	if attempts < 1 {
		attempts = 1
	}
	home := sc.homeShard()
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.Wait(b.Delay(i-1, rng))
		}
		var hs []Handle
		hs, err = sc.acquireOnce(p, (home+i)%sc.dir.Shards(), n, false, false, Constraint{})
		if err == nil || err != ErrUnavailable {
			return hs, err
		}
	}
	return nil, err
}

// routeIDs groups handle ids by owning shard into reused scratch slices
// (the routing hot path pinned by the alloc regression test).
func (sc *ShardedClient) routeIDs(handles []Handle) [][]int {
	for sh := range sc.groups {
		sc.groups[sh] = sc.groups[sh][:0]
	}
	for _, h := range handles {
		sh := sc.dir.OwnerOf(h.ID)
		sc.groups[sh] = append(sc.groups[sh], h.ID)
	}
	return sc.groups
}

// Release returns accelerators to their owning shards, splitting the
// batch per shard. On a partial failure the first error is returned;
// releases to other shards still go through.
func (sc *ShardedClient) Release(p *sim.Proc, handles []Handle) error {
	var firstErr error
	for sh, ids := range sc.routeIDs(handles) {
		if len(ids) == 0 {
			continue
		}
		status, _, _, err := sc.callShard(p, sh, opRelease, func(w *wire.Writer) {
			w.Int(len(ids))
			for _, id := range ids {
				w.Int(id)
			}
		})
		if err == nil {
			err = statusErr(status)
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// rankKeyedCall tries each shard in turn for operations addressed by
// daemon rank (Replace, Migrate), which the ring cannot route: only the
// holding shard accepts; the others answer ErrBadRequest.
func (sc *ShardedClient) rankKeyedCall(p *sim.Proc, op uint8, rank int) (Handle, error) {
	shards := sc.dir.Shards()
	home := sc.homeShard()
	err := ErrBadRequest
	for i := 0; i < shards; i++ {
		sh := (home + i) % shards
		status, payload, epoch, callErr := sc.callShard(p, sh, op, func(w *wire.Writer) { w.Int(rank) })
		if callErr != nil {
			return Handle{}, callErr
		}
		if statusErr(status) == ErrBadRequest {
			err = ErrBadRequest
			continue // not held on this shard
		}
		if err = statusErr(status); err != nil {
			return Handle{}, err
		}
		r := wire.NewReader(payload)
		if count := r.Int(); count != 1 {
			return Handle{}, fmt.Errorf("arm: replace reply has %d handles", count)
		}
		h := Handle{ID: r.Int(), Rank: r.Int(), Epoch: epoch}
		if decodeErr := r.Err(); decodeErr != nil {
			return Handle{}, fmt.Errorf("arm: malformed replace reply: %w", decodeErr)
		}
		return h, nil
	}
	return Handle{}, err
}

// Replace reports a dead daemon and asks for a substitute (see
// Client.Replace). The replacement may come from any shard's pool.
func (sc *ShardedClient) Replace(p *sim.Proc, failedRank int) (Handle, error) {
	return sc.rankKeyedCall(p, opReplace, failedRank)
}

// Migrate trades a suspect assignment for a spare (see Client.Migrate).
func (sc *ShardedClient) Migrate(p *sim.Proc, oldRank int) (Handle, error) {
	return sc.rankKeyedCall(p, opMigrate, oldRank)
}

// idCall routes a single-id administrative op to the owning shard.
func (sc *ShardedClient) idCall(p *sim.Proc, op uint8, args func(w *wire.Writer), id int) error {
	status, _, _, err := sc.callShard(p, sc.dir.OwnerOf(id), op, args)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Fail marks an accelerator broken (see Client.Fail).
func (sc *ShardedClient) Fail(p *sim.Proc, id int) error {
	return sc.idCall(p, opFail, func(w *wire.Writer) { w.Int(id) }, id)
}

// Repair returns a failed accelerator to the pool (see Client.Repair).
func (sc *ShardedClient) Repair(p *sim.Proc, id int) error {
	return sc.idCall(p, opRepair, func(w *wire.Writer) { w.Int(id) }, id)
}

// Drain takes an accelerator out of service (see Client.Drain).
func (sc *ShardedClient) Drain(p *sim.Proc, id int, deadline sim.Duration) error {
	return sc.idCall(p, opDrain, func(w *wire.Writer) { w.Int(id).I64(int64(deadline)) }, id)
}

// Register admits a new accelerator into the owning shard's inventory
// (see Client.Register).
func (sc *ShardedClient) Register(p *sim.Proc, id, rank int) error {
	return sc.idCall(p, opRegister, func(w *wire.Writer) { w.Int(id).Int(rank) }, id)
}

// RegisterCapable admits a capability-tagged accelerator into the owning
// shard's inventory (see Client.RegisterCapable).
func (sc *ShardedClient) RegisterCapable(p *sim.Proc, id, rank int, cap Capability) error {
	return sc.idCall(p, opRegister, func(w *wire.Writer) {
		w.Int(id).Int(rank)
		if !cap.IsZero() {
			encodeCapability(w, cap)
		}
	}, id)
}

// Retire drains an accelerator and removes it from the inventory (see
// Client.Retire).
func (sc *ShardedClient) Retire(p *sim.Proc, id int, deadline sim.Duration) error {
	return sc.idCall(p, opRetire, func(w *wire.Writer) { w.Int(id).I64(int64(deadline)) }, id)
}

// Renew renews this client's leases on every shard.
func (sc *ShardedClient) Renew(p *sim.Proc) error {
	for sh := 0; sh < sc.dir.Shards(); sh++ {
		status, _, _, err := sc.callShard(p, sh, opRenew, nil)
		if err == nil {
			err = statusErr(status)
		}
		if err != nil {
			return err
		}
	}
	return nil
}

// statsFrom fetches one shard's snapshot.
func (sc *ShardedClient) statsFrom(p *sim.Proc, sh int, extended bool) (PoolStats, error) {
	op := opStats
	if extended {
		op = opStatsEx
	}
	status, payload, _, err := sc.callShard(p, sh, op, nil)
	if err != nil {
		return PoolStats{}, err
	}
	if err := statusErr(status); err != nil {
		return PoolStats{}, err
	}
	if extended {
		return decodeStatsEx(payload)
	}
	return decodeStats(payload)
}

// mergeStats folds one shard's snapshot into the aggregate.
func mergeStats(agg *PoolStats, st PoolStats) {
	agg.Total += st.Total
	agg.Free += st.Free
	agg.Assigned += st.Assigned
	agg.Failed += st.Failed
	agg.Suspect += st.Suspect
	agg.Retired += st.Retired
	agg.Queued += st.Queued
	agg.Acquires += st.Acquires
	agg.Releases += st.Releases
	agg.Reclaimed += st.Reclaimed
	agg.Migrations += st.Migrations
	agg.BusySeconds += st.BusySeconds
	agg.WaitSeconds += st.WaitSeconds
	agg.Shared += st.Shared
	agg.Sessions += st.Sessions
	agg.PerAccel = append(agg.PerAccel, st.PerAccel...)
}

// Stats aggregates the pool snapshot across every shard.
func (sc *ShardedClient) Stats(p *sim.Proc) (PoolStats, error) {
	var agg PoolStats
	for sh := 0; sh < sc.dir.Shards(); sh++ {
		st, err := sc.statsFrom(p, sh, false)
		if err != nil {
			return PoolStats{}, err
		}
		mergeStats(&agg, st)
	}
	return agg, nil
}

// StatsEx aggregates the extended snapshot across every shard; PerAccel
// is the concatenation of the shards' tables, sorted by accelerator id.
func (sc *ShardedClient) StatsEx(p *sim.Proc) (PoolStats, error) {
	var agg PoolStats
	for sh := 0; sh < sc.dir.Shards(); sh++ {
		st, err := sc.statsFrom(p, sh, true)
		if err != nil {
			return PoolStats{}, err
		}
		mergeStats(&agg, st)
	}
	sort.Slice(agg.PerAccel, func(i, j int) bool { return agg.PerAccel[i].ID < agg.PerAccel[j].ID })
	return agg, nil
}

// ShutdownShard stops one shard's serving rank (teardown helper: the
// cluster skips shards already crash-killed by fault injection).
func (sc *ShardedClient) ShutdownShard(p *sim.Proc, shard int) error {
	status, _, _, err := sc.callShard(p, shard, opShutdown, nil)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Shutdown stops every distinct serving rank (teardown helper).
func (sc *ShardedClient) Shutdown(p *sim.Proc) error {
	done := make(map[int]bool, sc.dir.Shards())
	for sh := 0; sh < sc.dir.Shards(); sh++ {
		rank := sc.dir.Serving(sh)
		if done[rank] {
			continue
		}
		done[rank] = true
		if err := sc.ShutdownShard(p, sh); err != nil {
			return err
		}
	}
	return nil
}

// RecvNotice blocks until any shard sends this rank a health notice.
func (sc *ShardedClient) RecvNotice(p *sim.Proc) (Notice, error) {
	data, _ := sc.comm.Recv(p, minimpi.AnySource, TagNotify)
	return DecodeNotice(data)
}
