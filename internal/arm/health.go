package arm

// The ARM's active health subsystem: daemon heartbeats feed a threshold
// failure detector on the virtual clock (a two-level simplification of
// phi-accrual: silence beyond SuspectAfter makes a node suspect, beyond
// DeadAfter dead), assignments become leases that the front-end renews
// implicitly with every ARM request and daemons renew on their holders'
// behalf with every heartbeat, and revoked leases are sanitized via a
// daemon-side device reset before their accelerator re-enters the pool.
//
// Accelerator lifecycle with the subsystem on:
//
//	free ──grant──▶ leased(assigned) ──release──▶ free
//	  │                  │ lease expiry / forced drain
//	  │ silence          ▼
//	  ▼              reclaiming ──sanitize ok──▶ free (or retired)
//	suspect ◀─migrate─┘  │ sanitize failed
//	  │ beats resume     ▼
//	  │ (sanitize)     dead(failed)
//	  ▼
//	free        silence ≥ DeadAfter from any live state ──▶ dead(failed)

import (
	"errors"
	"fmt"

	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// HealthConfig tunes the ARM health subsystem. Zero durations disable the
// corresponding mechanism: SuspectAfter/DeadAfter gate the failure
// detector, LeaseTTL gates lease expiry.
type HealthConfig struct {
	// HeartbeatInterval is how often daemons beat (the cluster wires the
	// same value into the daemons) and the detector's check cadence.
	HeartbeatInterval sim.Duration
	// SuspectAfter is the heartbeat silence after which an accelerator
	// node is suspect: its free accelerator leaves the pool, and owners
	// of assigned ones are notified so they can migrate.
	SuspectAfter sim.Duration
	// DeadAfter is the silence after which a suspect node is declared
	// dead: its accelerators are marked failed and owners notified.
	DeadAfter sim.Duration
	// LeaseTTL is how long an assignment stays valid without renewal.
	// Renewal is implicit: any ARM request from the owner, any daemon
	// heartbeat reporting the owner active, or an explicit Renew.
	LeaseTTL sim.Duration
}

// DefaultHealthConfig returns a configuration proportioned for the
// simulated QDR fabric: suspect after 3 missed beats, dead after 10.
func DefaultHealthConfig() HealthConfig {
	return HealthConfig{
		HeartbeatInterval: 2 * sim.Millisecond,
		SuspectAfter:      6 * sim.Millisecond,
		DeadAfter:         20 * sim.Millisecond,
		LeaseTTL:          50 * sim.Millisecond,
	}
}

// Validate reports whether the configuration is coherent.
func (hc HealthConfig) Validate() error {
	if hc.HeartbeatInterval <= 0 && (hc.SuspectAfter > 0 || hc.DeadAfter > 0 || hc.LeaseTTL > 0) {
		return fmt.Errorf("arm: health config needs a positive HeartbeatInterval (detector cadence)")
	}
	if hc.DeadAfter > 0 && hc.SuspectAfter > 0 && hc.DeadAfter < hc.SuspectAfter {
		return fmt.Errorf("arm: DeadAfter %v below SuspectAfter %v", hc.DeadAfter, hc.SuspectAfter)
	}
	if hc.SuspectAfter > 0 && hc.SuspectAfter < hc.HeartbeatInterval {
		return fmt.Errorf("arm: SuspectAfter %v below the heartbeat interval %v", hc.SuspectAfter, hc.HeartbeatInterval)
	}
	return nil
}

// ConfigureHealth enables the health subsystem. Call before Run.
func (s *Server) ConfigureHealth(hc HealthConfig) error {
	if err := hc.Validate(); err != nil {
		return err
	}
	s.health = hc
	s.healthOn = hc.HeartbeatInterval > 0
	return nil
}

// SetSanitizer installs the function the ARM uses to wipe a reclaimed
// accelerator's device before re-granting it (the cluster wires a
// computation-API Reset here). It runs in its own process and must
// return within bounded virtual time — give the underlying client a
// timeout. Without a sanitizer, reclaimed accelerators return to the
// pool unwiped.
func (s *Server) SetSanitizer(fn func(p *sim.Proc, rank int) error) { s.sanitizer = fn }

// SetSessionReaper installs the function the ARM uses to tear down one
// dead tenant's state on a shared accelerator's daemon (the cluster wires
// core.Accel.ReapSessions here). Unlike the sanitizer, it is scoped to a
// single client so surviving tenants on the same accelerator are
// untouched. It runs in its own process; errors are ignored (the daemon
// may itself be dead). Without a reaper, a revoked sharer's device state
// is reclaimed only when the daemon's payload timeouts clean it up.
func (s *Server) SetSessionReaper(fn func(p *sim.Proc, rank, client int) error) { s.reaper = fn }

// EncodeHeartbeat builds the message a daemon sends the ARM every
// heartbeat interval on TagRequest. active lists the world ranks of
// clients that issued requests to the daemon since its previous beat;
// the ARM renews those clients' leases (the daemon-side half of
// implicit renewal).
func EncodeHeartbeat(active []int) []byte {
	w := wire.NewWriter(16 + 8*len(active))
	w.U8(opHeartbeat).U64(0)
	w.Int(len(active))
	for _, r := range active {
		w.Int(r)
	}
	return w.Bytes()
}

// NoticeKind classifies an unsolicited ARM→client health notice.
type NoticeKind uint8

// Notice kinds.
const (
	// NoticeSuspect: a daemon serving one of the client's accelerators
	// went silent; the client should consider migrating (arm.Client.
	// Migrate) before the node is declared dead.
	NoticeSuspect NoticeKind = iota + 1
	// NoticeDead: the daemon was declared dead; the assignment is gone
	// and device state is unrecoverable. Failover territory.
	NoticeDead
	// NoticeRevoked: the ARM took the assignment back — lease expiry or
	// a forced drain deadline.
	NoticeRevoked
)

func (k NoticeKind) String() string {
	switch k {
	case NoticeSuspect:
		return "suspect"
	case NoticeDead:
		return "dead"
	case NoticeRevoked:
		return "revoked"
	default:
		return fmt.Sprintf("notice(%d)", uint8(k))
	}
}

// Notice is an unsolicited health event the ARM sends to the owner of an
// affected accelerator on TagNotify.
type Notice struct {
	Kind NoticeKind
	ID   int // accelerator pool id
	Rank int // its daemon's world rank
}

func encodeNotice(n Notice) []byte {
	w := wire.NewWriter(24)
	w.U8(uint8(n.Kind)).Int(n.ID).Int(n.Rank)
	return w.Bytes()
}

// DecodeNotice parses a TagNotify message body.
func DecodeNotice(data []byte) (Notice, error) {
	r := wire.NewReader(data)
	n := Notice{Kind: NoticeKind(r.U8()), ID: r.Int(), Rank: r.Int()}
	if err := r.Err(); err != nil {
		return Notice{}, fmt.Errorf("arm: malformed notice: %w", err)
	}
	return n, nil
}

// notify sends a health notice to an accelerator's owner, fire and
// forget: a dead client simply never reads it.
func (s *Server) notify(owner int, kind NoticeKind, a *accel) {
	s.comm.Isend(owner, TagNotify, encodeNotice(Notice{Kind: kind, ID: a.id, Rank: a.rank}))
}

// scheduleTick re-arms the detector until the server shuts down or
// steps down (an abdicated server must not reclaim anything: its leases
// are the new leader's to manage).
func (s *Server) scheduleTick() {
	s.sim.After(s.health.HeartbeatInterval, func() {
		if s.closed || s.abdicated {
			return
		}
		s.checkHealth()
		s.scheduleTick()
	})
}

// checkHealth is one detector pass over the inventory: silence
// thresholds first, then lease expiry.
func (s *Server) checkHealth() {
	now := s.now()
	hc := s.health
	if hc.SuspectAfter > 0 || hc.DeadAfter > 0 {
		for _, a := range s.accels {
			silence := now.Sub(s.lastBeat[a.rank])
			switch {
			case hc.DeadAfter > 0 && silence >= hc.DeadAfter:
				s.markDead(a)
			case hc.SuspectAfter > 0 && silence >= hc.SuspectAfter:
				s.markSuspect(a)
			}
		}
	}
	if hc.LeaseTTL > 0 {
		for _, a := range s.accels {
			if a.state == acAssigned && now.Sub(a.lease) >= 0 {
				s.reclaim(a)
			}
			if a.state == acShared {
				// Shared leases expire per tenant: only the silent
				// sharer is revoked, the others keep the accelerator.
				for _, rank := range sortedSharerRanks(a) {
					if lease := a.sharers[rank]; lease > 0 && now.Sub(lease) >= 0 {
						s.reclaimShared(a, rank)
					}
				}
			}
		}
	}
	s.drainQueue()
	s.ship()
}

// markSuspect moves a silent node's accelerator out of circulation: a
// free one leaves the pool, an assigned one stays with its owner but the
// owner is told (once per episode) so it can migrate.
func (s *Server) markSuspect(a *accel) {
	switch a.state {
	case acFree:
		a.state = acSuspect
	case acAssigned:
		if !a.notified {
			a.notified = true
			s.notify(a.owner, NoticeSuspect, a)
		}
	case acShared:
		if !a.notified {
			a.notified = true
			for _, rank := range sortedSharerRanks(a) {
				s.notify(rank, NoticeSuspect, a)
			}
		}
	}
}

// markDead declares a node's accelerator failed after prolonged silence.
func (s *Server) markDead(a *accel) {
	switch a.state {
	case acFree, acSuspect, acReclaiming:
		a.state = acFailed
		s.settleDrainer(a)
	case acAssigned:
		s.accrue(s.now())
		s.notify(a.owner, NoticeDead, a)
		s.logEnd(a, a.owner)
		a.owner = 0
		a.state = acFailed
		s.settleDrainer(a)
	case acShared:
		s.accrue(s.now())
		for _, rank := range sortedSharerRanks(a) {
			s.notify(rank, NoticeDead, a)
			s.logEnd(a, rank)
		}
		a.sharers = nil
		a.state = acFailed
		s.settleDrainer(a)
	}
}

// heartbeat processes one daemon beat: refresh the detector, recover
// suspect accelerators on that rank, and renew leases of the clients the
// daemon saw traffic from.
func (s *Server) heartbeat(src int, active []int) {
	if !s.healthOn {
		return
	}
	s.lastBeat[src] = s.now()
	for _, a := range s.accels {
		if a.rank != src {
			continue
		}
		switch a.state {
		case acSuspect:
			// The node came back. A clean accelerator rejoins the pool
			// directly; one abandoned mid-use (migration source) is
			// sanitized first.
			if a.dirty && s.sanitizer != nil {
				s.startSanitize(a)
			} else {
				a.dirty = false
				a.state = acFree
			}
		case acAssigned, acShared:
			a.notified = false // suspicion episode over
		}
		// Detector-declared deaths (acFailed) do NOT auto-recover on
		// resumed beats: a partition long enough to be declared dead needs
		// an administrative Repair, matching real operator workflows.
	}
	for _, r := range active {
		s.touchClient(r)
	}
	s.drainQueue()
}

// touchClient renews every lease held by the given client rank.
func (s *Server) touchClient(src int) {
	if !s.healthOn || s.health.LeaseTTL <= 0 {
		return
	}
	exp := s.now().Add(s.health.LeaseTTL)
	for _, a := range s.accels {
		if a.state == acAssigned && a.owner == src {
			a.lease = exp
		}
		if a.state == acShared {
			if _, held := a.sharers[src]; held {
				a.sharers[src] = exp
			}
		}
	}
}

// reclaim revokes an expired lease: the owner is presumed dead, its
// accelerator is taken back and sanitized before re-entering the pool.
func (s *Server) reclaim(a *accel) {
	s.accrue(s.now())
	s.notify(a.owner, NoticeRevoked, a)
	s.logEnd(a, a.owner)
	a.owner = 0
	a.dirty = true
	s.reclaimedCount++
	s.sanitizeOrSettle(a)
}

// reclaimShared revokes one expired sharer lease. The accelerator is not
// sanitized wholesale — the surviving tenants' state must stay intact —
// so instead the session reaper tears down just the dead tenant's
// sessions on the daemon. Only when the last sharer leaves does the
// accelerator return to the free pool.
func (s *Server) reclaimShared(a *accel, client int) {
	s.accrue(s.now())
	s.notify(client, NoticeRevoked, a)
	s.logEnd(a, client)
	delete(a.sharers, client)
	s.reclaimedCount++
	if s.reaper != nil {
		rank := a.rank
		s.spawnTracked(fmt.Sprintf("arm-reap-ac%d-cn%d", a.id, client), func(p *sim.Proc) {
			// Best effort: the daemon may be dead too, in which case the
			// detector handles the accelerator itself. A fenced rejection
			// is different — the daemon is alive and answers to a higher
			// epoch, meaning this server was deposed: step down.
			if err := s.reaper(p, rank, client); err != nil && errors.Is(err, ErrFenced) {
				s.stepDown(s.myEpoch + 1)
			}
		})
	}
	if len(a.sharers) == 0 {
		if a.draining {
			s.retire(a)
		} else {
			a.state = acFree
		}
		s.drainQueue()
	}
}

// sanitizeOrSettle wipes a just-revoked accelerator's device when a
// sanitizer is wired, or settles it immediately when not.
func (s *Server) sanitizeOrSettle(a *accel) {
	if s.sanitizer != nil {
		s.startSanitize(a)
		return
	}
	a.dirty = false
	s.settle(a, true)
}

// startSanitize runs the daemon-side device reset in its own process and
// settles the accelerator on completion. The accelerator parks in
// acReclaiming meanwhile; if the detector declares it dead first, the
// completion is dropped.
func (s *Server) startSanitize(a *accel) {
	a.state = acReclaiming
	s.spawnTracked(fmt.Sprintf("arm-sanitize-ac%d", a.id), func(p *sim.Proc) {
		err := s.sanitizer(p, a.rank)
		if err != nil && errors.Is(err, ErrFenced) {
			// The daemon holds a fencing token newer than our epoch: a
			// promoted successor is live and this server is the deposed
			// half of a partition. Step down instead of fighting it.
			s.stepDown(s.myEpoch + 1)
		}
		if s.closed || s.abdicated || a.state != acReclaiming {
			return
		}
		if err == nil {
			a.dirty = false
		}
		s.settle(a, err == nil)
		s.drainQueue()
		s.ship()
	})
}

// settle places a reclaimed accelerator in its final state: retired when
// a drain was pending, free on a clean sanitize, failed otherwise.
func (s *Server) settle(a *accel, clean bool) {
	switch {
	case !clean:
		a.state = acFailed
		s.settleDrainer(a)
	case a.draining:
		s.retire(a)
	default:
		a.state = acFree
	}
}

// retire takes an accelerator out of service and answers the drain
// request that asked for it.
func (s *Server) retire(a *accel) {
	a.state = acRetired
	a.draining = false
	s.settleDrainer(a)
}

// settleDrainer answers a pending drain once its accelerator reaches an
// out-of-service state (retired, or failed along the way — either way it
// no longer serves). An accelerator being retired out of the inventory
// (opRetire) leaves it here, once the drain semantics have run their
// course.
func (s *Server) settleDrainer(a *accel) {
	a.draining = false
	if a.drainer != nil {
		s.reply(a.drainer.src, a.drainer.reqID, statusOK, nil)
		a.drainer = nil
	}
	if a.removing {
		s.removeAccel(a)
	}
}

// drain handles opDrain: stop granting the accelerator, wait (bounded by
// deadline, when positive) for in-flight work to release it, then retire
// it. The reply is delayed until the accelerator is out of service.
func (s *Server) drain(src int, reqID uint64, id int, deadline sim.Duration) {
	a, ok := s.byID[id]
	if !ok || a.drainer != nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	switch a.state {
	case acRetired, acFailed:
		// Already out of service; retiring a failed accelerator is a
		// formality that keeps it from being repaired back by accident.
		a.state = acRetired
		s.reply(src, reqID, statusOK, nil)
	case acFree, acSuspect:
		a.state = acRetired
		a.dirty = false
		s.reply(src, reqID, statusOK, nil)
		s.drainQueue()
	case acReclaiming:
		// Sanitize in flight: mark it so settle() retires instead of
		// freeing, and answer then.
		a.draining = true
		a.drainer = &drainWait{src: src, reqID: reqID}
	case acAssigned, acShared:
		s.accrue(s.now())
		a.draining = true
		a.drainer = &drainWait{src: src, reqID: reqID}
		if deadline > 0 {
			s.sim.After(deadline, func() { s.forceDrain(a) })
		}
	}
}

// forceDrain fires when a drain deadline expires with holders still
// attached: the lease(s) are revoked and the accelerator sanitized into
// retirement.
func (s *Server) forceDrain(a *accel) {
	if s.closed || (a.state != acAssigned && a.state != acShared) || !a.draining {
		return
	}
	defer s.ship()
	s.accrue(s.now())
	if a.state == acShared {
		for _, rank := range sortedSharerRanks(a) {
			s.notify(rank, NoticeRevoked, a)
			s.logEnd(a, rank)
			s.reclaimedCount++
		}
		a.sharers = nil
	} else {
		s.notify(a.owner, NoticeRevoked, a)
		s.logEnd(a, a.owner)
		a.owner = 0
		s.reclaimedCount++
	}
	a.dirty = true
	s.sanitizeOrSettle(a)
	s.drainQueue()
}

// migrate handles opMigrate: the client holds an accelerator on a
// suspect (or otherwise unwanted) daemon rank and asks to trade it for a
// spare. The old assignment is surrendered into the suspect state — its
// daemon's next heartbeat will sanitize it back into the pool; continued
// silence lets the detector declare it dead — and a spare is granted
// non-blocking, with the same reply shape as acquire. When no spare can
// be granted right now the old assignment is kept: limping on a suspect
// node beats holding nothing. Migration is exclusive-only: a shared
// lease has no device state the ARM could hand over wholesale, so a
// tenant on a suspect shared accelerator releases and re-acquires
// instead (the client fails with ErrBadRequest here).
func (s *Server) migrate(src int, reqID uint64, rank int) {
	var old *accel
	for _, a := range s.accels {
		if a.rank == rank && a.state == acAssigned && a.owner == src {
			old = a
			break
		}
	}
	if old == nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	if s.freeCount() < 1 || (s.policy == FIFO && len(s.queue) > 0) {
		s.reply(src, reqID, statusUnavailable, nil)
		return
	}
	if s.classed {
		// Heterogeneous pool: resident device state only moves to a
		// capability-compatible spare, same-class preferred (a C1060's
		// state never lands on the FPGA). Picked before surrendering the
		// old assignment — limping on a suspect device beats trading a
		// working hold for nothing.
		target := s.migrationTarget(old)
		if target == nil {
			s.reply(src, reqID, statusUnavailable, nil)
			return
		}
		s.accrue(s.now())
		s.logEnd(old, old.owner)
		old.owner = 0
		old.state = acSuspect
		old.dirty = true
		old.notified = false
		s.migrateCount++
		s.settleDrainer(old)
		s.grantOne(target, src, reqID)
		return
	}
	s.accrue(s.now())
	s.logEnd(old, old.owner)
	old.owner = 0
	old.state = acSuspect
	old.dirty = true
	old.notified = false
	s.migrateCount++
	s.settleDrainer(old)
	s.acquire(&pendingAcquire{src: src, reqID: reqID, n: 1, enqueued: s.now()}, false)
}
