package arm

import (
	"testing"
	"testing/quick"
)

// Property tests for the consistent-hash ring (ISSUE 6 satellite): for
// any shard count, ownership is total and unique, and growing or
// shrinking the ring by one shard remaps only the keys that touch the
// added/removed shard — close to the ideal 1/N fraction, never more
// than a loose multiple of it.

const ringTestKeys = 4096

// clampShards folds an arbitrary quick-generated value into a sane
// shard count.
func clampShards(raw uint8) int {
	return 1 + int(raw)%15 // 1..15, the range the simulator runs
}

// TestPropertyRingTotalUnique: every key has exactly one owner and the
// owner is a valid shard index, for any shard count.
func TestPropertyRingTotalUnique(t *testing.T) {
	prop := func(raw uint8, seed int64) bool {
		shards := clampShards(raw)
		r := NewRing(shards)
		base := int(seed % 1e6)
		if base < 0 {
			base = -base
		}
		for k := 0; k < ringTestKeys; k++ {
			id := base + k
			s := r.Owner(id)
			if s < 0 || s >= shards {
				t.Logf("shards=%d id=%d owner=%d out of range", shards, id, s)
				return false
			}
			// Determinism doubles as uniqueness: the same key cannot map
			// to two shards if repeated lookups agree.
			if r.Owner(id) != s {
				t.Logf("shards=%d id=%d owner not deterministic", shards, id)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRingMinimalRemap: going from n to n+1 shards, a key either
// keeps its owner or moves to the new shard n — never between old
// shards — and the moved fraction stays near 1/(n+1).
func TestPropertyRingMinimalRemap(t *testing.T) {
	prop := func(raw uint8) bool {
		n := clampShards(raw)
		old := NewRing(n)
		grown := NewRing(n + 1)
		moved := 0
		for id := 0; id < ringTestKeys; id++ {
			a, b := old.Owner(id), grown.Owner(id)
			if a != b {
				if b != n {
					t.Logf("n=%d id=%d moved %d->%d, not to the new shard", n, id, a, b)
					return false
				}
				moved++
			}
		}
		// Expected moved fraction is 1/(n+1); with 64 vnodes per shard the
		// spread is modest, so 3x is a safe ceiling that still catches a
		// broken ring (which remaps nearly everything).
		limit := 3 * ringTestKeys / (n + 1)
		if moved > limit {
			t.Logf("n=%d: %d of %d keys moved, limit %d", n, moved, ringTestKeys, limit)
			return false
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestPropertyRingShrinkOnlyOrphans: going from n+1 to n shards, only
// keys owned by the removed shard n change owner; everything else is
// untouched.
func TestPropertyRingShrinkOnlyOrphans(t *testing.T) {
	prop := func(raw uint8) bool {
		n := clampShards(raw)
		big := NewRing(n + 1)
		small := NewRing(n)
		for id := 0; id < ringTestKeys; id++ {
			a, b := big.Owner(id), small.Owner(id)
			if a != n && a != b {
				t.Logf("n=%d id=%d owner changed %d->%d though shard %d was removed", n, id, a, b, n)
				return false
			}
			if a == n && (b < 0 || b >= n) {
				t.Logf("n=%d id=%d orphaned to invalid shard %d", n, id, b)
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// TestRingBalance is a deterministic sanity check that 64 vnodes keep
// shard load within a reasonable band (not a property test: balance is a
// statistical claim about the fixed hash, not an invariant).
func TestRingBalance(t *testing.T) {
	const shards = 8
	r := NewRing(shards)
	counts := make([]int, shards)
	for id := 0; id < ringTestKeys; id++ {
		counts[r.Owner(id)]++
	}
	ideal := ringTestKeys / shards
	for s, c := range counts {
		if c < ideal/3 || c > ideal*3 {
			t.Errorf("shard %d owns %d of %d keys (ideal %d)", s, c, ringTestKeys, ideal)
		}
	}
}
