package arm

// epoch_test.go pins the epoch-carrying wire encodings introduced by the
// fencing protocol (DESIGN.md §12) to byte-exact golden vectors, and
// checks the epoch algebra itself: strictly monotonic per-shard epochs
// across arbitrary promotion sequences, step-down on any higher observed
// claim, and clean standby shutdown via Replica.Stop. Like
// golden_test.go, a failure in a golden vector means a protocol break —
// default single-shard traffic must stay byte-identical, and sharded
// traffic must keep the exact envelope layout peers and clients agree
// on.

import (
	"encoding/hex"
	"testing"
	"testing/quick"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// epochServer hand-builds shard 0's server of a two-shard fleet (rank 1
// of a 3-rank world; rank 0 is the client, rank 2 the peer shard),
// without running the simulation, so handle() can be driven with
// crafted byte strings.
func epochServer(t *testing.T) *Server {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, 3, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(NewRing(2), []int{1, 2}, nil)
	var inv []Handle
	for id := 0; id < 8; id++ {
		if dir.OwnerOf(id) == 0 {
			inv = append(inv, Handle{ID: id, Rank: 100 + id})
		}
	}
	if len(inv) == 0 {
		t.Fatal("ring assigns no accelerator to shard 0")
	}
	srv, err := NewServerOpts(w.Comm(1), inv, Options{Shards: 2, Shard: 0, Directory: dir})
	if err != nil {
		t.Fatal(err)
	}
	return srv
}

func u64hex(v uint64) string {
	b := make([]byte, 8)
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
	return hex.EncodeToString(b)
}

// TestGoldenEpochedRequest pins the opEpoched client envelope — the
// layout NewShardedClient emits for every sharded request — and proves
// the server decodes it: epoch claim, inner op, reqID, args, trailing
// replay marker.
func TestGoldenEpochedRequest(t *testing.T) {
	srv := epochServer(t)
	// opEpoched | epoch=1 | opAcquire | reqID=7 | n=1 | blocking=0 | replay=0
	want := "13" + u64hex(1) + "01" + u64hex(7) + u64hex(1) + "00" + "00"
	msg := wire.NewWriter(32).
		U8(opEpoched).U64(1).
		U8(opAcquire).U64(7).
		Int(1).U8(0).U8(0).
		Bytes()
	if got := hex.EncodeToString(msg); got != want {
		t.Fatalf("epoched request encoding drifted:\n got  %s\n want %s", got, want)
	}
	if !srv.handle(0, msg) {
		t.Fatal("epoched acquire refused")
	}
	if srv.Abdicated() {
		t.Error("matching epoch claim must not depose the server")
	}
	if srv.cachedReply(0, 7) == nil {
		t.Error("epoched acquire left no dedup-cached reply")
	}
	var granted bool
	for _, e := range srv.GrantLedger() {
		if e.Kind == LedgerGrant && e.Holder == 0 && e.Epoch == 1 {
			granted = true
		}
	}
	if !granted {
		t.Errorf("no epoch-1 grant in ledger: %v", srv.GrantLedger())
	}
}

// TestEpochedRequestStepDown: a client envelope claiming a higher epoch
// is proof of succession — the server must abdicate on the spot while
// keeping its own epoch (the claim is advertised via epochHint, not
// adopted).
func TestEpochedRequestStepDown(t *testing.T) {
	srv := epochServer(t)
	msg := wire.NewWriter(32).U8(opEpoched).U64(7).U8(opStats).U64(9).Bytes()
	if !srv.handle(0, msg) {
		t.Fatal("epoched stats refused")
	}
	if !srv.Abdicated() {
		t.Fatal("server did not step down on higher epoch claim")
	}
	if srv.Epoch() != 1 {
		t.Errorf("step-down changed own epoch to %d, want 1", srv.Epoch())
	}
	if h := srv.epochHint(); h != 7 {
		t.Errorf("epochHint after step-down = %d, want 7", h)
	}
	// An abdicated server must refuse ownership ops: no grant, no
	// cached reply (the replay must re-execute at the successor).
	free := srv.freeCount()
	acq := wire.NewWriter(32).
		U8(opEpoched).U64(7).U8(opAcquire).U64(10).Int(1).U8(0).U8(0).
		Bytes()
	srv.handle(0, acq)
	if srv.freeCount() != free {
		t.Error("abdicated server granted an accelerator")
	}
	if srv.cachedReply(0, 10) != nil {
		t.Error("fenced refusal was dedup-cached; replays must re-execute at the successor")
	}
	if len(srv.GrantLedger()) != 0 {
		t.Errorf("abdicated server wrote to the grant ledger: %v", srv.GrantLedger())
	}
}

// TestGoldenGossipEncoding pins the opLoad gossip layout: target-shard
// epoch in the id slot, then shard, free, operational, and the sender's
// own epoch in the trailer (the deposed-leader rebuff channel).
func TestGoldenGossipEncoding(t *testing.T) {
	want := "11" + u64hex(3) + u64hex(1) + u64hex(4) + u64hex(5) + u64hex(2)
	got := hex.EncodeToString(encodeLoad(wire.NewWriter(64), 3, 1, 4, 5, 2))
	if got != want {
		t.Fatalf("gossip encoding drifted:\n got  %s\n want %s", got, want)
	}

	// Round trip: a peer's gossip lands in the load table.
	srv := epochServer(t)
	msg := encodeLoad(wire.NewWriter(64), 1 /* our epoch */, 1, 4, 5, 1)
	if !srv.handle(2, msg) {
		t.Fatal("gossip refused")
	}
	if srv.Abdicated() {
		t.Error("gossip with matching epoch deposed the server")
	}
	if srv.peerFree[1] != 4 || srv.peerOper[1] != 5 || !srv.peerSeen[1] {
		t.Errorf("gossip not recorded: free=%d oper=%d seen=%v",
			srv.peerFree[1], srv.peerOper[1], srv.peerSeen[1])
	}
}

// TestGossipStepDown: gossip whose id slot claims a higher epoch for
// this shard — the rebuff a successor sends a deposed leader — forces
// abdication.
func TestGossipStepDown(t *testing.T) {
	srv := epochServer(t)
	msg := encodeLoad(wire.NewWriter(64), 5, 1, 4, 5, 5)
	srv.handle(2, msg)
	if !srv.Abdicated() {
		t.Fatal("gossip rebuff did not depose the stale leader")
	}
	if h := srv.epochHint(); h != 5 {
		t.Errorf("epochHint after rebuff = %d, want 5", h)
	}
}

// TestGoldenForwardEncoding pins the peer-forward envelope — target
// epoch in the id slot, original client rank, then the unwrapped
// request — and proves the server executes it on the client's behalf.
func TestGoldenForwardEncoding(t *testing.T) {
	srv := epochServer(t)
	// opForward | epoch=1 | src=0 | opAcquire | reqID=21 | n=1 | blocking=0 | replay=0
	want := "10" + u64hex(1) + u64hex(0) + "01" + u64hex(21) + u64hex(1) + "00" + "00"
	msg := wire.NewWriter(64).
		U8(opForward).U64(1).Int(0).
		U8(opAcquire).U64(21).Int(1).U8(0).U8(0).
		Bytes()
	if got := hex.EncodeToString(msg); got != want {
		t.Fatalf("forward encoding drifted:\n got  %s\n want %s", got, want)
	}
	if !srv.handle(2, msg) { // relayed by peer rank 2
		t.Fatal("forwarded acquire refused")
	}
	if srv.cachedReply(0, 21) == nil {
		t.Error("forwarded acquire cached no reply for the original client")
	}
}

// TestGoldenRecallEncoding pins the recall query layout with its
// trailing epoch claim, and checks both the benign (cache miss) and
// deposing (higher claim) paths.
func TestGoldenRecallEncoding(t *testing.T) {
	want := "12" + u64hex(77) + u64hex(0) + u64hex(21) + u64hex(1)
	msg := wire.NewWriter(64).
		U8(opRecall).U64(77).Int(0).U64(21).U64(1).
		Bytes()
	if got := hex.EncodeToString(msg); got != want {
		t.Fatalf("recall encoding drifted:\n got  %s\n want %s", got, want)
	}
	srv := epochServer(t)
	srv.handle(2, msg)
	if srv.Abdicated() {
		t.Error("recall with matching epoch deposed the server")
	}
	srv.handle(2, wire.NewWriter(64).U8(opRecall).U64(78).Int(0).U64(21).U64(6).Bytes())
	if !srv.Abdicated() {
		t.Error("recall claiming epoch 6 did not depose the server")
	}
}

// TestGoldenReplyEpochTrailer pins the sharded reply: status byte,
// length-prefixed body, then the server's epoch hint. After observing a
// higher epoch the hint must advertise the successor's epoch, steering
// clients to refresh.
func TestGoldenReplyEpochTrailer(t *testing.T) {
	srv := epochServer(t)
	srv.reply(0, 42, statusOK, nil)
	want := "00" + "00000000" + u64hex(1)
	if got := hex.EncodeToString(srv.cachedReply(0, 42)); got != want {
		t.Fatalf("sharded reply encoding drifted:\n got  %s\n want %s", got, want)
	}
	srv.observeEpoch(6)
	srv.reply(0, 43, statusOK, nil)
	want = "00" + "00000000" + u64hex(6)
	if got := hex.EncodeToString(srv.cachedReply(0, 43)); got != want {
		t.Fatalf("post-deposition reply trailer drifted:\n got  %s\n want %s", got, want)
	}
}

// TestDirectoryEpochMonotonicQuick drives a directory through arbitrary
// promotion sequences over a random shard fleet: every successful
// promotion bumps exactly its shard's epoch by one, shards without a
// follower never change, and no read ever observes a decrease.
func TestDirectoryEpochMonotonicQuick(t *testing.T) {
	prop := func(ops []uint8, shardSeed uint8) bool {
		shards := int(shardSeed%5) + 1
		leaders := make([]int, shards)
		followers := make([]int, shards)
		for sh := 0; sh < shards; sh++ {
			leaders[sh] = sh
			followers[sh] = shards + sh
			if sh%2 == 1 {
				followers[sh] = -1 // odd shards are unreplicated
			}
		}
		dir := NewDirectory(NewRing(shards), leaders, followers)
		last := make([]uint64, shards)
		for sh := range last {
			if dir.Epoch(sh) != 1 {
				return false // epochs must start at 1
			}
			last[sh] = 1
		}
		for _, op := range ops {
			sh := int(op) % shards
			before := dir.Epoch(sh)
			ok := dir.Promote(sh)
			after := dir.Epoch(sh)
			if ok && after != before+1 {
				return false
			}
			if !ok && (after != before || followers[sh] >= 0) {
				return false
			}
			for s2 := 0; s2 < shards; s2++ {
				e := dir.Epoch(s2)
				if e < last[s2] {
					return false
				}
				if s2 != sh && e != last[s2] {
					return false
				}
				last[s2] = e
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestReplicaStop: stopping a standby before its leader goes silent must
// prevent promotion entirely — no epoch bump, no directory flip — and
// let the simulation wind down cleanly (the satellite replacing
// kill-the-process-by-hand teardown).
func TestReplicaStop(t *testing.T) {
	s := sim.New()
	w, err := minimpi.NewWorld(s, 3, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(NewRing(1), []int{1}, []int{2})
	inv := []Handle{{ID: 0, Rank: 100}}
	opts := Options{Shards: 1, Shard: 0, Directory: dir}
	rp, err := ReplicaFor(w.Comm(2), dir, 0, inv, opts, 10*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("replica", rp.Run)
	s.Spawn("stopper", func(p *sim.Proc) {
		p.Wait(5 * sim.Millisecond) // before the 10 ms silence threshold
		rp.Stop()
		rp.Stop() // idempotent
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if rp.Promoted() {
		t.Error("stopped standby promoted anyway")
	}
	if dir.Promoted(0) || dir.Epoch(0) != 1 {
		t.Errorf("stopped standby touched the directory: promoted=%v epoch=%d",
			dir.Promoted(0), dir.Epoch(0))
	}
	if !rp.Server().Closed() {
		t.Error("Stop did not close the embedded server")
	}
}

// TestReplicaStopAfterPromotion: Stop must be a no-op once the replica
// serves — a promoted server is shut down through the normal path, not
// yanked at teardown.
func TestReplicaStopAfterPromotion(t *testing.T) {
	s := sim.New()
	w, err := minimpi.NewWorld(s, 3, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	dir := NewDirectory(NewRing(1), []int{1}, []int{2})
	inv := []Handle{{ID: 0, Rank: 100}}
	opts := Options{Shards: 1, Shard: 0, Directory: dir}
	rp, err := ReplicaFor(w.Comm(2), dir, 0, inv, opts, 5*sim.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	s.Spawn("replica", rp.Run)
	s.Spawn("ctl", func(p *sim.Proc) {
		for !rp.Promoted() {
			p.Wait(sim.Millisecond)
		}
		rp.Stop()
		if rp.Server().Closed() {
			t.Error("Stop killed a promoted, serving server")
		}
		if dir.Epoch(0) != 2 {
			t.Errorf("promotion epoch = %d, want 2", dir.Epoch(0))
		}
		rp.Server().Kill() // actual teardown
	})
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
	if !rp.Promoted() {
		t.Fatal("replica never promoted")
	}
}
