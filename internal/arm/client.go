package arm

import (
	"fmt"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Client is the resource-management API a compute-node process uses to
// talk to the ARM (the paper's extra API complementing the computation
// API). A Client is bound to one communicator rank; it is not safe to
// share one Client between concurrently blocking processes.
type Client struct {
	comm    *minimpi.Comm
	armRank int
	nextReq uint64
}

// NewClient creates a resource-management client addressing the ARM at
// armRank on comm.
func NewClient(comm *minimpi.Comm, armRank int) *Client {
	return &Client{comm: comm, armRank: armRank}
}

// call performs one request/reply round trip.
func (c *Client) call(p *sim.Proc, op uint8, args func(w *wire.Writer)) (uint8, []byte, error) {
	c.nextReq++
	reqID := c.nextReq
	w := wire.NewWriter(32)
	w.U8(op).U64(reqID)
	if args != nil {
		args(w)
	}
	resp := c.comm.Irecv(c.armRank, tagReplyBase+minimpi.Tag(reqID))
	c.comm.Send(p, c.armRank, TagRequest, w.Bytes())
	data, _ := resp.Wait(p)
	r := wire.NewReader(data)
	status := r.U8()
	payload := r.Blob()
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("arm: malformed reply: %w", err)
	}
	return status, payload, nil
}

func statusErr(status uint8) error {
	switch status {
	case statusOK:
		return nil
	case statusUnavailable:
		return ErrUnavailable
	case statusImpossible:
		return ErrImpossible
	default:
		return ErrBadRequest
	}
}

// Acquire requests n exclusive accelerators. With blocking=false it fails
// immediately with ErrUnavailable when fewer than n are free; with
// blocking=true it waits until the ARM can grant the request. A request
// larger than the operational pool fails with ErrImpossible in both
// modes.
func (c *Client) Acquire(p *sim.Proc, n int, blocking bool) ([]Handle, error) {
	status, payload, err := c.call(p, opAcquire, func(w *wire.Writer) {
		b := uint8(0)
		if blocking {
			b = 1
		}
		w.Int(n).U8(b)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	count := r.Int()
	handles := make([]Handle, 0, count)
	for i := 0; i < count; i++ {
		handles = append(handles, Handle{ID: r.Int(), Rank: r.Int()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("arm: malformed acquire reply: %w", err)
	}
	return handles, nil
}

// Release returns previously acquired accelerators to the pool.
func (c *Client) Release(p *sim.Proc, handles []Handle) error {
	status, _, err := c.call(p, opRelease, func(w *wire.Writer) {
		w.Int(len(handles))
		for _, h := range handles {
			w.Int(h.ID)
		}
	})
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Replace reports that the accelerator whose daemon listens on
// failedRank stopped answering and asks for a substitute. The ARM marks
// the failed accelerator broken and grants a replacement from the free
// pool; ErrUnavailable means no spare is free right now (the failure
// report still sticks), ErrImpossible that the operational pool is
// exhausted, ErrBadRequest that the caller does not hold an accelerator
// on that rank.
func (c *Client) Replace(p *sim.Proc, failedRank int) (Handle, error) {
	status, payload, err := c.call(p, opReplace, func(w *wire.Writer) { w.Int(failedRank) })
	if err != nil {
		return Handle{}, err
	}
	if err := statusErr(status); err != nil {
		return Handle{}, err
	}
	r := wire.NewReader(payload)
	if count := r.Int(); count != 1 {
		return Handle{}, fmt.Errorf("arm: replace reply has %d handles", count)
	}
	h := Handle{ID: r.Int(), Rank: r.Int()}
	if err := r.Err(); err != nil {
		return Handle{}, fmt.Errorf("arm: malformed replace reply: %w", err)
	}
	return h, nil
}

// Stats fetches the ARM's pool snapshot.
func (c *Client) Stats(p *sim.Proc) (PoolStats, error) {
	status, payload, err := c.call(p, opStats, nil)
	if err != nil {
		return PoolStats{}, err
	}
	if err := statusErr(status); err != nil {
		return PoolStats{}, err
	}
	return decodeStats(payload)
}

// Fail marks an accelerator broken (administrative; in a deployment this
// comes from a health monitor). Queued requests that become impossible
// are rejected.
func (c *Client) Fail(p *sim.Proc, id int) error {
	status, _, err := c.call(p, opFail, func(w *wire.Writer) { w.Int(id) })
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Repair returns a failed accelerator to the free pool.
func (c *Client) Repair(p *sim.Proc, id int) error {
	status, _, err := c.call(p, opRepair, func(w *wire.Writer) { w.Int(id) })
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Shutdown stops the ARM server loop (used at simulation teardown).
func (c *Client) Shutdown(p *sim.Proc) error {
	status, _, err := c.call(p, opShutdown, nil)
	if err != nil {
		return err
	}
	return statusErr(status)
}
