package arm

import (
	"fmt"
	"math/rand"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// Client is the resource-management API a compute-node process uses to
// talk to the ARM (the paper's extra API complementing the computation
// API). A Client is bound to one communicator rank; it is not safe to
// share one Client between concurrently blocking processes.
type Client struct {
	comm    *minimpi.Comm
	armRank int
	nextReq uint64
}

// NewClient creates a resource-management client addressing the ARM at
// armRank on comm.
func NewClient(comm *minimpi.Comm, armRank int) *Client {
	return &Client{comm: comm, armRank: armRank}
}

// call performs one request/reply round trip.
func (c *Client) call(p *sim.Proc, op uint8, args func(w *wire.Writer)) (uint8, []byte, error) {
	c.nextReq++
	reqID := c.nextReq
	w := wire.NewWriter(32)
	w.U8(op).U64(reqID)
	if args != nil {
		args(w)
	}
	resp := c.comm.Irecv(c.armRank, tagReplyBase+minimpi.Tag(reqID))
	c.comm.Send(p, c.armRank, TagRequest, w.Bytes())
	data, _ := resp.Wait(p)
	r := wire.NewReader(data)
	status := r.U8()
	payload := r.Blob()
	if err := r.Err(); err != nil {
		return 0, nil, fmt.Errorf("arm: malformed reply: %w", err)
	}
	return status, payload, nil
}

func statusErr(status uint8) error {
	switch status {
	case statusOK:
		return nil
	case statusUnavailable:
		return ErrUnavailable
	case statusImpossible:
		return ErrImpossible
	case statusFenced:
		return ErrFenced
	case statusNoCapable:
		return ErrNoCapableDevice
	default:
		return ErrBadRequest
	}
}

// Acquire requests n exclusive accelerators. With blocking=false it fails
// immediately with ErrUnavailable when fewer than n are free; with
// blocking=true it waits until the ARM can grant the request. A request
// larger than the operational pool fails with ErrImpossible in both
// modes.
func (c *Client) Acquire(p *sim.Proc, n int, blocking bool) ([]Handle, error) {
	status, payload, err := c.call(p, opAcquire, func(w *wire.Writer) {
		b := uint8(0)
		if blocking {
			b = 1
		}
		w.Int(n).U8(b)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	count := r.Int()
	handles := make([]Handle, 0, count)
	for i := 0; i < count; i++ {
		handles = append(handles, Handle{ID: r.Int(), Rank: r.Int()})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("arm: malformed acquire reply: %w", err)
	}
	return handles, nil
}

// AcquireCapable requests n exclusive accelerators satisfying the
// capability constraint (device class and/or supported kernel class; a
// zero constraint matches any device). The returned handles carry each
// grant's Capability descriptor. Blocking semantics match Acquire,
// except that a constraint no live device can ever satisfy fails
// immediately with ErrNoCapableDevice in both modes — waiting for a
// device class the fleet does not have would block forever.
func (c *Client) AcquireCapable(p *sim.Proc, n int, blocking bool, constraint Constraint) ([]Handle, error) {
	status, payload, err := c.call(p, opAcquireCapable, func(w *wire.Writer) {
		b := uint8(0)
		if blocking {
			b = 1
		}
		w.Int(n).U8(b)
		encodeConstraint(w, constraint)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	return decodeCapableHandles(payload)
}

// decodeCapableHandles parses an opAcquireCapable reply: handle pairs
// each followed by the granted device's capability descriptor.
func decodeCapableHandles(payload []byte) ([]Handle, error) {
	r := wire.NewReader(payload)
	count := r.Int()
	handles := make([]Handle, 0, count)
	for i := 0; i < count; i++ {
		h := Handle{ID: r.Int(), Rank: r.Int()}
		h.Cap = decodeCapability(r)
		handles = append(handles, h)
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("arm: malformed acquire reply: %w", err)
	}
	return handles, nil
}

// AcquireShared requests shared leases on n distinct accelerators. Unlike
// Acquire, the grant does not evict or exclude other tenants: up to the
// server's ShareCapacity clients can hold leases on one accelerator at a
// time, each talking to the daemon under its own session. The returned
// handles have Shared set. ErrBadRequest means the ARM was built without
// sharing (ShareCapacity 0); blocking and ErrUnavailable/ErrImpossible
// semantics match Acquire, with availability counted as accelerators that
// can take one more sharer for this client.
func (c *Client) AcquireShared(p *sim.Proc, n int, blocking bool) ([]Handle, error) {
	status, payload, err := c.call(p, opAcquireShared, func(w *wire.Writer) {
		b := uint8(0)
		if blocking {
			b = 1
		}
		w.Int(n).U8(b)
	})
	if err != nil {
		return nil, err
	}
	if err := statusErr(status); err != nil {
		return nil, err
	}
	r := wire.NewReader(payload)
	count := r.Int()
	handles := make([]Handle, 0, count)
	for i := 0; i < count; i++ {
		handles = append(handles, Handle{ID: r.Int(), Rank: r.Int(), Shared: true})
	}
	if err := r.Err(); err != nil {
		return nil, fmt.Errorf("arm: malformed acquire reply: %w", err)
	}
	return handles, nil
}

// Release returns previously acquired accelerators to the pool.
func (c *Client) Release(p *sim.Proc, handles []Handle) error {
	status, _, err := c.call(p, opRelease, func(w *wire.Writer) {
		w.Int(len(handles))
		for _, h := range handles {
			w.Int(h.ID)
		}
	})
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Replace reports that the accelerator whose daemon listens on
// failedRank stopped answering and asks for a substitute. The ARM marks
// the failed accelerator broken and grants a replacement from the free
// pool; ErrUnavailable means no spare is free right now (the failure
// report still sticks), ErrImpossible that the operational pool is
// exhausted, ErrBadRequest that the caller does not hold an accelerator
// on that rank.
func (c *Client) Replace(p *sim.Proc, failedRank int) (Handle, error) {
	status, payload, err := c.call(p, opReplace, func(w *wire.Writer) { w.Int(failedRank) })
	if err != nil {
		return Handle{}, err
	}
	if err := statusErr(status); err != nil {
		return Handle{}, err
	}
	r := wire.NewReader(payload)
	if count := r.Int(); count != 1 {
		return Handle{}, fmt.Errorf("arm: replace reply has %d handles", count)
	}
	h := Handle{ID: r.Int(), Rank: r.Int()}
	if err := r.Err(); err != nil {
		return Handle{}, fmt.Errorf("arm: malformed replace reply: %w", err)
	}
	return h, nil
}

// Stats fetches the ARM's pool snapshot.
func (c *Client) Stats(p *sim.Proc) (PoolStats, error) {
	status, payload, err := c.call(p, opStats, nil)
	if err != nil {
		return PoolStats{}, err
	}
	if err := statusErr(status); err != nil {
		return PoolStats{}, err
	}
	return decodeStats(payload)
}

// StatsEx fetches the pool snapshot plus the sharing counters and the
// per-accelerator utilization table (PoolStats.Shared, .Sessions,
// .PerAccel), which the legacy Stats reply omits.
func (c *Client) StatsEx(p *sim.Proc) (PoolStats, error) {
	status, payload, err := c.call(p, opStatsEx, nil)
	if err != nil {
		return PoolStats{}, err
	}
	if err := statusErr(status); err != nil {
		return PoolStats{}, err
	}
	return decodeStatsEx(payload)
}

// Fail marks an accelerator broken (administrative; in a deployment this
// comes from a health monitor). Queued requests that become impossible
// are rejected.
func (c *Client) Fail(p *sim.Proc, id int) error {
	status, _, err := c.call(p, opFail, func(w *wire.Writer) { w.Int(id) })
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Repair returns a failed accelerator to the free pool.
func (c *Client) Repair(p *sim.Proc, id int) error {
	status, _, err := c.call(p, opRepair, func(w *wire.Writer) { w.Int(id) })
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Shutdown stops the ARM server loop (used at simulation teardown).
func (c *Client) Shutdown(p *sim.Proc) error {
	status, _, err := c.call(p, opShutdown, nil)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Renew explicitly renews every lease this client rank holds. Lease
// renewal is normally implicit (any ARM request, or daemon heartbeats
// reporting the client active), so Renew is only needed by a client that
// holds accelerators while idling on both fronts.
func (c *Client) Renew(p *sim.Proc) error {
	status, _, err := c.call(p, opRenew, nil)
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Drain takes accelerator id out of service: no new grants, in-flight
// ownership respected until released, then the accelerator retires. The
// call blocks until the accelerator is out of service. A positive
// deadline bounds the wait: when it expires with the holder still
// attached the ARM revokes the lease, sanitizes, and retires.
func (c *Client) Drain(p *sim.Proc, id int, deadline sim.Duration) error {
	status, _, err := c.call(p, opDrain, func(w *wire.Writer) {
		w.Int(id).I64(int64(deadline))
	})
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Register admits a new accelerator — pool id plus its daemon's world
// rank — into the ARM's live inventory (elastic grow). The daemon should
// already be running and heartbeating; it gets a full silence budget
// from the moment of registration. ErrBadRequest means the id is already
// in the inventory.
func (c *Client) Register(p *sim.Proc, id, rank int) error {
	status, _, err := c.call(p, opRegister, func(w *wire.Writer) { w.Int(id).Int(rank) })
	if err != nil {
		return err
	}
	return statusErr(status)
}

// RegisterCapable is Register with a capability descriptor: the
// accelerator joins the inventory tagged with its device class and
// supported kernel classes, making it eligible for constrained acquires
// and class-aware migration. A zero capability is exactly Register
// (legacy wire bytes included).
func (c *Client) RegisterCapable(p *sim.Proc, id, rank int, cap Capability) error {
	status, _, err := c.call(p, opRegister, func(w *wire.Writer) {
		w.Int(id).Int(rank)
		if !cap.IsZero() {
			encodeCapability(w, cap)
		}
	})
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Retire drains accelerator id and then removes it from the inventory
// entirely (elastic shrink) — unlike Drain, which parks it in the
// retired state. Deadline semantics match Drain: the call blocks until
// the accelerator is out of service, and a positive deadline bounds the
// wait by revoking stragglers. After Retire returns, the pool holds no
// record of the accelerator and therefore no stranded lease on it.
func (c *Client) Retire(p *sim.Proc, id int, deadline sim.Duration) error {
	status, _, err := c.call(p, opRetire, func(w *wire.Writer) {
		w.Int(id).I64(int64(deadline))
	})
	if err != nil {
		return err
	}
	return statusErr(status)
}

// Migrate trades the accelerator this client holds on oldRank for a
// spare. The old assignment is surrendered (its daemon sanitizes it back
// into the pool on its next heartbeat) and the returned handle points at
// the replacement. ErrUnavailable means no spare could be granted right
// now — the old assignment is kept, so the caller can retry or limp on.
func (c *Client) Migrate(p *sim.Proc, oldRank int) (Handle, error) {
	status, payload, err := c.call(p, opMigrate, func(w *wire.Writer) { w.Int(oldRank) })
	if err != nil {
		return Handle{}, err
	}
	if err := statusErr(status); err != nil {
		return Handle{}, err
	}
	r := wire.NewReader(payload)
	if count := r.Int(); count != 1 {
		return Handle{}, fmt.Errorf("arm: migrate reply has %d handles", count)
	}
	h := Handle{ID: r.Int(), Rank: r.Int()}
	if err := r.Err(); err != nil {
		return Handle{}, fmt.Errorf("arm: malformed migrate reply: %w", err)
	}
	return h, nil
}

// RecvNotice blocks until the ARM sends this rank a health notice
// (suspect daemon, declared death, lease revocation). Run it in a
// dedicated watcher process: notices are unsolicited and arrive on their
// own tag, so they never interleave with request/reply traffic.
func (c *Client) RecvNotice(p *sim.Proc) (Notice, error) {
	data, _ := c.comm.Recv(p, c.armRank, TagNotify)
	return DecodeNotice(data)
}

// Backoff computes jittered exponential retry delays, for loops that
// retry ErrUnavailable acquires without hammering the ARM in lockstep
// with every other waiter.
type Backoff struct {
	Base   sim.Duration // delay before the first retry
	Cap    sim.Duration // upper bound on the un-jittered delay
	Factor float64      // growth per attempt (e.g. 2.0)
	Jitter float64      // fraction of the delay randomized, in [0, 1]
}

// DefaultBackoff is proportioned for the simulated fabric's ARM round
// trip (~tens of microseconds): start at 1ms, double, cap at 16ms,
// randomize the last quarter.
func DefaultBackoff() Backoff {
	return Backoff{
		Base:   sim.Millisecond,
		Cap:    16 * sim.Millisecond,
		Factor: 2.0,
		Jitter: 0.25,
	}
}

// Delay returns the wait before retry number attempt (0-based). rng may
// be nil, which disables jitter.
func (b Backoff) Delay(attempt int, rng *rand.Rand) sim.Duration {
	d := float64(b.Base)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if sim.Duration(d) >= b.Cap {
			d = float64(b.Cap)
			break
		}
	}
	if d > float64(b.Cap) {
		d = float64(b.Cap)
	}
	if b.Jitter > 0 && rng != nil {
		// Full delay minus a random slice of the jitter band, so the
		// cap still bounds the result.
		d -= b.Jitter * d * rng.Float64()
	}
	if d < 1 {
		d = 1
	}
	return sim.Duration(d)
}

// AcquireRetry is Acquire(n, blocking=false) wrapped in a jittered
// exponential backoff: up to attempts tries, sleeping b.Delay between
// ErrUnavailable results. Other errors abort immediately. rng may be nil
// (no jitter); pass a seeded one for deterministic-but-decorrelated
// retries.
func (c *Client) AcquireRetry(p *sim.Proc, n, attempts int, b Backoff, rng *rand.Rand) ([]Handle, error) {
	if attempts < 1 {
		attempts = 1
	}
	var err error
	for i := 0; i < attempts; i++ {
		if i > 0 {
			p.Wait(b.Delay(i-1, rng))
		}
		var hs []Handle
		hs, err = c.Acquire(p, n, false)
		if err == nil || err != ErrUnavailable {
			return hs, err
		}
	}
	return nil, err
}
