package arm

// shard.go is the server side of the sharded ARM (ISSUE 6 tentpole):
// accelerator ownership is partitioned across N shard leaders by the
// consistent-hash ring in the shared Directory. A request that lands on
// the wrong shard is forwarded to the owner in one extra hop — the owner
// replies straight to the client, whose sharded reply Irecv matches any
// source, so there is no relay on the return path and a forwarder's
// crash can never swallow a reply. Acquires the local pool cannot
// satisfy fall back to the least-loaded peer, chosen from opLoad gossip
// (per-shard free/operational counts exchanged every tick).
//
// Failure handling rides on the reply-dedup cache: every reply is
// recorded per (client, reqID), so a client replaying an in-flight
// request after a leader death (see replica.go for promotion) gets the
// recorded answer instead of a second execution. A replayed acquire on a
// freshly promoted follower additionally recalls the peers (opRecall)
// before executing, closing the window where the dead leader had
// forwarded the original to a peer that granted it.
//
// All of this is dormant when Options.Directory is nil: the classic
// single manager sends and receives exactly the bytes it did before
// sharding existed.

import (
	"fmt"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
	"dynacc/internal/wire"
)

// shardTickInterval is the gossip/replication beat cadence when the
// health subsystem (whose HeartbeatInterval otherwise sets the pace) is
// off.
const shardTickInterval = sim.Millisecond

// dedupKeep bounds the per-client reply cache. Client reqIDs increase
// monotonically, so evicting the smallest keeps the most recent replies —
// the only ones a failover replay can ask for.
const dedupKeep = 64

// repReply is one recorded reply awaiting shipment to the follower.
type repReply struct {
	dst   int
	reqID uint64
	msg   []byte
}

// configureShard wires the sharding options into a new server.
func (s *Server) configureShard(opts Options) error {
	if opts.Directory == nil {
		if opts.Shards > 1 {
			return fmt.Errorf("arm: %d shards need a Directory", opts.Shards)
		}
		return nil
	}
	shards := opts.Directory.Shards()
	if opts.Shards != 0 && opts.Shards != shards {
		return fmt.Errorf("arm: Options.Shards %d does not match directory's %d", opts.Shards, shards)
	}
	if opts.Shard < 0 || opts.Shard >= shards {
		return fmt.Errorf("arm: shard index %d out of range [0,%d)", opts.Shard, shards)
	}
	s.dir = opts.Directory
	s.shard = opts.Shard
	s.sharded = shards > 1
	s.myEpoch = s.dir.Epoch(s.shard)
	s.followerRank = s.dir.Follower(s.shard)
	// A server whose own rank is the shard's follower is the replica
	// itself (post-promotion); it has nobody to ship to.
	s.replicated = s.followerRank >= 0 && s.followerRank != s.comm.Rank()
	s.peerFree = make([]int, shards)
	s.peerOper = make([]int, shards)
	s.peerSeen = make([]bool, shards)
	s.peerClassFree = make([]map[string]int, shards)
	s.peerClassOper = make([]map[string]int, shards)
	s.fwdSeq = 1 << 32 // disjoint from client reqID sequences
	s.fwdW = wire.NewWriter(64)
	s.replies = make(map[int]map[uint64][]byte)
	if s.replicated {
		s.repW = wire.NewWriter(256)
	}
	return nil
}

// spawnTracked spawns a helper process that is killed along with the
// server by Kill, so a simulated crash takes down the whole rank — main
// loop, sanitizers, reapers, recalls — exactly as a real process death
// would.
func (s *Server) spawnTracked(name string, fn func(p *sim.Proc)) {
	s.spawned = append(s.spawned, s.sim.Spawn(name, fn))
}

// Kill simulates a crash of this ARM rank: the server stops processing,
// its detector and gossip ticks go silent (which is what the follower's
// promotion timer and the clients' failover timeouts key on), and every
// helper process dies with it. Used by chaos tests via the cluster's
// KillARMShard.
func (s *Server) Kill() {
	s.closed = true
	for _, p := range s.spawned {
		if !p.Terminated() {
			p.Kill()
		}
	}
	if s.mainProc != nil && !s.mainProc.Terminated() {
		s.mainProc.Kill()
	}
}

// Closed reports whether the server has shut down or been killed.
func (s *Server) Closed() bool { return s.closed }

// tickInterval is the shard gossip/beat cadence.
func (s *Server) tickInterval() sim.Duration {
	if s.healthOn && s.health.HeartbeatInterval > 0 {
		return s.health.HeartbeatInterval
	}
	return shardTickInterval
}

// scheduleShardTick re-arms the gossip/replication beat until shutdown
// or step-down (an abdicated server neither gossips nor ships).
func (s *Server) scheduleShardTick() {
	s.sim.After(s.tickInterval(), func() {
		if s.closed || s.abdicated {
			return
		}
		s.gossip()
		s.ship()
		s.scheduleShardTick()
	})
}

// encodeLoad builds one gossip message. The id slot carries the
// sender's directory view of the *receiver's* shard epoch (the receiver
// steps down if it is serving under a lower one), and the trailer
// carries the epoch the sender claims for its own shard (so the
// receiver can rebuff a deposed sender).
func encodeLoad(w *wire.Writer, targetEpoch uint64, shard, free, oper int, senderEpoch uint64) []byte {
	w.U8(opLoad).U64(targetEpoch).Int(shard).Int(free).Int(oper).U64(senderEpoch)
	return w.CopyBytes()
}

// encodeLoadMsg is encodeLoad for this server's own load, extended with
// the per-class table when the inventory is capability-tagged: sorted
// class names, each with its free and operational counts. Untagged
// servers emit exactly the legacy gossip bytes.
func (s *Server) encodeLoadMsg(targetEpoch uint64) []byte {
	w := s.fwdW.Reset()
	w.U8(opLoad).U64(targetEpoch).Int(s.shard).Int(s.freeCount()).Int(s.operational()).U64(s.myEpoch)
	if s.classed {
		names, cf, co := s.classLoads()
		w.Int(len(names))
		for _, cl := range names {
			w.Str(cl).Int(cf[cl]).Int(co[cl])
		}
	}
	return w.CopyBytes()
}

// gossip broadcasts this shard's load to its peers (fire and forget).
func (s *Server) gossip() {
	if !s.sharded {
		return
	}
	for sh := 0; sh < s.dir.Shards(); sh++ {
		if sh == s.shard {
			continue
		}
		s.comm.Isend(s.dir.Serving(sh), TagRequest, s.encodeLoadMsg(s.dir.Epoch(sh)))
	}
}

// handleLoad records one peer's gossiped load. A sender claiming an
// epoch below its shard's current one is a deposed leader that has not
// heard about its own succession (the partition healed, but nothing
// routes traffic to it anymore): rebuff it with one gossip message sent
// straight back at its rank, carrying the epoch it is missing in the id
// slot so it steps down.
func (s *Server) handleLoad(src int, r *wire.Reader) {
	sh := r.Int()
	free := r.Int()
	oper := r.Int()
	var senderEpoch uint64
	if r.Remaining() >= 8 {
		senderEpoch = r.U64()
	}
	if r.Err() != nil || sh < 0 || sh >= len(s.peerFree) || sh == s.shard {
		return
	}
	s.peerFree[sh] = free
	s.peerOper[sh] = oper
	s.peerSeen[sh] = true
	if r.Remaining() > 0 {
		// Per-class table from a capability-tagged peer.
		nc := r.Int()
		if r.Err() == nil && nc >= 0 && nc <= 1<<16 {
			cf := make(map[string]int, nc)
			co := make(map[string]int, nc)
			for i := 0; i < nc; i++ {
				cl := r.Str()
				cf[cl] = r.Int()
				co[cl] = r.Int()
			}
			if r.Err() == nil {
				s.peerClassFree[sh] = cf
				s.peerClassOper[sh] = co
			}
		}
	}
	if !s.abdicated && senderEpoch > 0 && senderEpoch < s.dir.Epoch(sh) {
		s.comm.Isend(src, TagRequest, s.encodeLoadMsg(s.dir.Epoch(sh)))
	}
}

// gossipComplete reports whether every peer has gossiped at least once —
// the precondition for trusting a cluster-wide "impossible" verdict.
func (s *Server) gossipComplete() bool {
	for sh, seen := range s.peerSeen {
		if sh != s.shard && !seen {
			return false
		}
	}
	return true
}

// clusterOperational estimates the cluster-wide operational count from
// the local pool plus the last gossip.
func (s *Server) clusterOperational() int {
	n := s.operational()
	for sh, oper := range s.peerOper {
		if sh != s.shard {
			n += oper
		}
	}
	return n
}

// foreignOwner decides whether a request naming these accelerator ids
// must be forwarded: true with the owning shard when every id belongs to
// the same non-local shard. Mixed-shard batches are left to local
// validation (the sharded client splits batches per shard, so a mixed
// batch here is already a malformed request and fails on the unknown
// ids).
func (s *Server) foreignOwner(ids []int, forwarded bool) (int, bool) {
	if !s.sharded || forwarded || len(ids) == 0 {
		return 0, false
	}
	owner := s.dir.OwnerOf(ids[0])
	for _, id := range ids[1:] {
		if s.dir.OwnerOf(id) != owner {
			return 0, false
		}
	}
	if owner == s.shard {
		return 0, false
	}
	return owner, true
}

// foreignOwnerOne is foreignOwner for single-id requests.
func (s *Server) foreignOwnerOne(id int, forwarded bool) (int, bool) {
	if !s.sharded || forwarded {
		return 0, false
	}
	if owner := s.dir.OwnerOf(id); owner != s.shard {
		return owner, true
	}
	return 0, false
}

// forwardOp relays a client's request to the owning shard. The owner
// executes it as if the client had sent it there (same client rank, same
// reqID) and replies straight to the client. The envelope's id slot
// carries the forwarder's directory view of the owner's epoch: a
// deposed owner that somehow still receives the forward steps down.
func (s *Server) forwardOp(owner int, src int, reqID uint64, op uint8, args func(w *wire.Writer)) {
	w := s.fwdW.Reset()
	w.U8(opForward).U64(s.dir.Epoch(owner)).Int(src).U8(op).U64(reqID)
	if args != nil {
		args(w)
	}
	s.comm.Isend(s.dir.Serving(owner), TagRequest, w.CopyBytes())
}

// forwardAcquire tries to hand an acquire the local pool cannot satisfy
// to the least-loaded peer (most gossiped free accelerators). Reports
// whether a forward was issued; the peer replies directly to the client.
func (s *Server) forwardAcquire(req *pendingAcquire) bool {
	best, bestFree := -1, 0
	for sh := 0; sh < s.dir.Shards(); sh++ {
		if sh == s.shard {
			continue
		}
		free := s.peerFree[sh]
		if req.constraint.Class != "" {
			// Class-constrained: judge peers by their gossiped per-class
			// free counts. A peer that never gossiped a class table has no
			// matching devices. (A kernel-only constraint cannot be
			// evaluated remotely — gossip carries classes, not kernel
			// tables — so it falls through to the total free count and the
			// peer gives the final verdict.)
			free = 0
			if m := s.peerClassFree[sh]; m != nil {
				free = m[req.constraint.Class]
			}
		}
		if free > bestFree {
			best, bestFree = sh, free
		}
	}
	if best < 0 || bestFree < req.n {
		return false
	}
	// Optimistically decay the gossiped count so a burst of local misses
	// spreads across peers instead of dogpiling the same one until the
	// next gossip tick corrects it.
	s.peerFree[best] -= req.n
	if req.constraint.Class != "" {
		if m := s.peerClassFree[best]; m != nil {
			m[req.constraint.Class] -= req.n
		}
	}
	op := opAcquire
	if req.shared {
		op = opAcquireShared
	}
	if req.capable {
		op = opAcquireCapable
	}
	s.forwardOp(best, req.src, req.reqID, op, func(w *wire.Writer) {
		w.Int(req.n).U8(0) // non-blocking at the peer
		if req.capable {
			encodeConstraint(w, req.constraint)
		}
	})
	return true
}

// cachedReply returns the recorded reply for (src, reqID), or nil.
func (s *Server) cachedReply(src int, reqID uint64) []byte {
	if s.dir == nil {
		return nil
	}
	return s.replies[src][reqID]
}

// rememberReply records a sent reply for failover replays, bounding the
// per-client cache by evicting the oldest (smallest) reqID.
func (s *Server) rememberReply(dst int, reqID uint64, msg []byte) {
	if reqID == 0 {
		return
	}
	m := s.replies[dst]
	if m == nil {
		m = make(map[uint64][]byte, 8)
		s.replies[dst] = m
	}
	m[reqID] = msg
	if len(m) > dedupKeep {
		oldest := ^uint64(0)
		for id := range m {
			if id < oldest {
				oldest = id
			}
		}
		delete(m, oldest)
	}
}

// resendReply re-sends a recorded reply verbatim.
func (s *Server) resendReply(dst int, reqID uint64, msg []byte) {
	s.comm.Isend(dst, tagReplyBase+minimpi.Tag(reqID), msg)
}

// handleRecall answers a peer's dedup query: did this shard already
// answer (client, origReqID)? The cached reply travels back verbatim so
// the asking shard can relay it unchanged.
func (s *Server) handleRecall(src int, reqID uint64, r *wire.Reader) {
	client := r.Int()
	origReqID := r.U64()
	if r.Remaining() >= 8 {
		// Trailing epoch claim for this shard (absent pre-fencing).
		s.observeEpoch(r.U64())
	}
	if r.Err() != nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	if cached := s.cachedReply(client, origReqID); cached != nil {
		s.reply(src, reqID, statusOK, cached)
		return
	}
	s.reply(src, reqID, statusUnavailable, nil)
}

// recallThenAcquire serves a replayed acquire on a freshly promoted
// shard: the dead leader may have forwarded the original request to a
// peer that granted it, so ask every peer for a cached answer before
// executing. Without this, a replay could be granted twice (once by the
// peer, once here), stranding a lease the client never learns about.
// Runs in its own process — peers answer in bounded time, and the main
// loop keeps serving meanwhile.
func (s *Server) recallThenAcquire(req *pendingAcquire, blocking bool) {
	s.spawnTracked(fmt.Sprintf("arm-recall-cn%d-req%d", req.src, req.reqID), func(p *sim.Proc) {
		timeout := 4 * s.tickInterval()
		for sh := 0; sh < s.dir.Shards(); sh++ {
			if sh == s.shard {
				continue
			}
			s.fwdSeq++
			id := s.fwdSeq
			peer := s.dir.Serving(sh)
			resp := s.comm.Irecv(peer, tagReplyBase+minimpi.Tag(id))
			w := wire.NewWriter(40)
			w.U8(opRecall).U64(id).Int(req.src).U64(req.reqID).U64(s.dir.Epoch(sh))
			s.comm.Isend(peer, TagRequest, w.Bytes())
			data, _, ok := resp.WaitTimeout(p, timeout)
			if !ok {
				resp.Cancel()
				continue // peer silent; it cannot have granted recently
			}
			r := wire.NewReader(data)
			status := r.U8()
			cached := r.Blob()
			if r.Err() == nil && status == statusOK && len(cached) > 0 {
				// A peer already answered this request: relay its reply
				// verbatim and record it here for any further replays.
				s.rememberReply(req.src, req.reqID, cached)
				s.resendReply(req.src, req.reqID, cached)
				s.ship()
				return
			}
		}
		if s.closed {
			return
		}
		// Nobody answered it before: execute fresh.
		s.acquire(req, blocking)
		s.ship()
	})
}

// register admits a new accelerator into the live inventory (elastic
// grow). The daemon is granted a full heartbeat silence budget from now.
func (s *Server) register(src int, reqID uint64, id, rank int, cap Capability) {
	if _, dup := s.byID[id]; dup {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	a := &accel{id: id, rank: rank, state: acFree, cap: cap}
	s.accels = append(s.accels, a)
	s.byID[id] = a
	if !cap.IsZero() {
		s.classed = true
	}
	if s.lastBeat != nil {
		s.lastBeat[rank] = s.now()
	}
	s.reply(src, reqID, statusOK, nil)
	s.drainQueue()
}

// retireRemove drains an accelerator and removes it from the inventory
// (elastic shrink). The reply semantics are opDrain's — delayed until the
// accelerator is out of service — and the removal happens at that same
// moment, so a completed Retire guarantees zero stranded leases on the
// departed accelerator.
func (s *Server) retireRemove(src int, reqID uint64, id int, deadline sim.Duration) {
	a, ok := s.byID[id]
	if !ok || a.drainer != nil {
		s.reply(src, reqID, statusBadRequest, nil)
		return
	}
	a.removing = true
	s.drain(src, reqID, id, deadline)
	if a.state == acRetired {
		// Drain settled immediately (the accelerator was already idle or
		// out of service); the deferred paths remove via settleDrainer.
		s.removeAccel(a)
	}
}

// removeAccel drops an accelerator from the inventory. Copy-on-write:
// detector passes may be mid-iteration over the old slice, which stays
// valid (the removed accelerator is retired, so every lifecycle check
// treats it as a no-op).
func (s *Server) removeAccel(a *accel) {
	a.removing = false
	delete(s.byID, a.id)
	out := make([]*accel, 0, len(s.accels))
	for _, b := range s.accels {
		if b != a {
			out = append(out, b)
		}
	}
	s.accels = out
	s.updateClassed()
}
