package arm

// ledger.go is the split-brain consistency checker (PR 7, DESIGN.md
// §12). Every sharded server appends a GrantEvent for each lease grant
// and each hold end (release, reclaim, detector death, repair, forced
// drain), stamped with the server's leadership epoch and the virtual
// time. After a chaos run the test merges the ledgers of every server
// that was ever alive — leaders, deposed leaders, promoted followers —
// and replays them against the daemons' fencing logs to prove the
// system's core safety claim: no accelerator was exclusively usable by
// two holders over overlapping virtual-time intervals.
//
// The subtlety is what ends a stale hold. A lease granted by a leader
// that was then partitioned away has no release event at the new
// leader, so a naive interval check would report every failover as a
// violation. Fencing is exactly the mechanism that ends such holds: the
// promoted leader pushes its epoch to every daemon of the shard before
// re-granting anything, and from the moment a daemon records a higher
// epoch, tokens minted under lower epochs are rejected — the stale hold
// is unusable. The checker therefore truncates a hold at the first
// fence mark above its epoch on its accelerator's daemon, and reports a
// violation only when two different holders' effective intervals
// actually overlap.

import (
	"fmt"
	"sort"
	"strings"

	"dynacc/internal/sim"
)

// GrantEventKind classifies a ledger entry.
type GrantEventKind uint8

// Ledger event kinds.
const (
	// LedgerGrant: an exclusive lease was granted (or re-opened under a
	// new epoch at promotion re-arm).
	LedgerGrant GrantEventKind = iota + 1
	// LedgerGrantShared: a shared lease was granted to one tenant.
	LedgerGrantShared
	// LedgerEnd: the holder's association with the accelerator ended —
	// release, reclaim, detector death, repair, or forced drain.
	LedgerEnd
)

func (k GrantEventKind) String() string {
	switch k {
	case LedgerGrant:
		return "grant"
	case LedgerGrantShared:
		return "grant-shared"
	case LedgerEnd:
		return "end"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// GrantEvent is one entry of a server's grant ledger.
type GrantEvent struct {
	Time   sim.Time
	Shard  int
	Epoch  uint64
	Accel  int
	Holder int // client world rank
	Kind   GrantEventKind
}

func (e GrantEvent) String() string {
	return fmt.Sprintf("t=%-12v shard=%d epoch=%d accel=%d holder=%d %s",
		e.Time, e.Shard, e.Epoch, e.Accel, e.Holder, e.Kind)
}

// logGrant records a lease grant in the ledger (sharded operation only).
func (s *Server) logGrant(a *accel, holder int, shared bool) {
	if s.dir == nil {
		return
	}
	kind := LedgerGrant
	if shared {
		kind = LedgerGrantShared
	}
	s.ledger = append(s.ledger, GrantEvent{
		Time: s.now(), Shard: s.shard, Epoch: s.myEpoch,
		Accel: a.id, Holder: holder, Kind: kind,
	})
}

// logEnd records the end of one holder's association with a. Holder 0
// is a legal client rank (compute node 0), so ends are logged
// unconditionally; an end with no matching open hold is a no-op in the
// checker.
func (s *Server) logEnd(a *accel, holder int) {
	if s.dir == nil {
		return
	}
	s.ledger = append(s.ledger, GrantEvent{
		Time: s.now(), Shard: s.shard, Epoch: s.myEpoch,
		Accel: a.id, Holder: holder, Kind: LedgerEnd,
	})
}

// GrantLedger returns a copy of this server's grant ledger.
func (s *Server) GrantLedger() []GrantEvent {
	return append([]GrantEvent(nil), s.ledger...)
}

// FenceMark records a daemon's fencing high-water mark advancing: from
// Time on, tokens with epochs below Epoch are rejected at that daemon.
type FenceMark struct {
	Epoch uint64
	Time  sim.Time
}

// openHold is checker state: one holder's currently-open interval.
type openHold struct {
	epoch  uint64
	shared bool
	since  sim.Time
}

// fencedBefore reports whether a hold under epoch e on an accelerator
// with the given fence marks was unusable by time t: some mark with a
// strictly higher epoch landed at or before t.
func fencedBefore(marks []FenceMark, e uint64, t sim.Time) bool {
	for _, m := range marks {
		if m.Epoch > e && m.Time.Sub(t) <= 0 {
			return true
		}
	}
	return false
}

// CheckSplitBrain replays the merged grant ledgers of every server that
// participated in a run against the daemons' fencing logs (keyed by
// accelerator id) and returns one message per safety violation: a
// moment where two different holders could both use an accelerator and
// at least one of them exclusively. An empty result is the split-brain
// safety proof for the run.
func CheckSplitBrain(events []GrantEvent, fences map[int][]FenceMark) []string {
	sorted := append([]GrantEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool {
		if sorted[i].Time != sorted[j].Time {
			return sorted[i].Time.Sub(sorted[j].Time) < 0
		}
		// Ends settle before grants at the same instant: a release and
		// the regrant it unblocks share a timestamp in the simulator.
		ki, kj := sorted[i].Kind == LedgerEnd, sorted[j].Kind == LedgerEnd
		if ki != kj {
			return ki
		}
		if sorted[i].Accel != sorted[j].Accel {
			return sorted[i].Accel < sorted[j].Accel
		}
		return sorted[i].Epoch < sorted[j].Epoch
	})
	holds := make(map[int]map[int]*openHold) // accel → holder → hold
	var violations []string
	for _, e := range sorted {
		byHolder := holds[e.Accel]
		if byHolder == nil {
			byHolder = make(map[int]*openHold)
			holds[e.Accel] = byHolder
		}
		switch e.Kind {
		case LedgerEnd:
			delete(byHolder, e.Holder)
		case LedgerGrant, LedgerGrantShared:
			shared := e.Kind == LedgerGrantShared
			if h := byHolder[e.Holder]; h != nil {
				// The same holder re-granted (promotion re-arm re-opens
				// replicated holds under the new epoch): one continuous
				// hold, tracked under the highest epoch.
				if e.Epoch > h.epoch {
					h.epoch = e.Epoch
				}
				h.shared = h.shared && shared
				continue
			}
			for _, other := range sortedHolders(byHolder) {
				h := byHolder[other]
				if shared && h.shared {
					continue // shared leases legally coexist
				}
				if fencedBefore(fences[e.Accel], h.epoch, e.Time) {
					// The existing hold's epoch was fenced at the daemon
					// before this grant: the stale holder could no longer
					// use the device, so the intervals do not overlap.
					delete(byHolder, other)
					continue
				}
				violations = append(violations, fmt.Sprintf(
					"accel %d: %s to holder %d (epoch %d) at t=%v overlaps live hold by %d (epoch %d, since t=%v, shared=%v) — no fence mark above epoch %d on the daemon by then",
					e.Accel, e.Kind, e.Holder, e.Epoch, e.Time,
					other, h.epoch, h.since, h.shared, h.epoch))
			}
			byHolder[e.Holder] = &openHold{epoch: e.Epoch, shared: shared, since: e.Time}
		}
	}
	return violations
}

// sortedHolders returns the holder ranks of a hold map in ascending
// order so checker output is deterministic.
func sortedHolders(m map[int]*openHold) []int {
	out := make([]int, 0, len(m))
	for r := range m {
		out = append(out, r)
	}
	sort.Ints(out)
	return out
}

// FormatLedger renders merged ledger events and fence marks as the
// postmortem artifact chaos tests dump when the checker fails.
func FormatLedger(events []GrantEvent, fences map[int][]FenceMark) string {
	var b strings.Builder
	sorted := append([]GrantEvent(nil), events...)
	sort.SliceStable(sorted, func(i, j int) bool { return sorted[i].Time.Sub(sorted[j].Time) < 0 })
	b.WriteString("# grant ledger (merged, time-ordered)\n")
	for _, e := range sorted {
		fmt.Fprintf(&b, "%s\n", e)
	}
	b.WriteString("# daemon fence marks\n")
	ids := make([]int, 0, len(fences))
	for id := range fences {
		ids = append(ids, id)
	}
	sort.Ints(ids)
	for _, id := range ids {
		for _, m := range fences[id] {
			fmt.Fprintf(&b, "accel=%d epoch=%d t=%v\n", id, m.Epoch, m.Time)
		}
	}
	return b.String()
}
