package arm

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// healthBed is a control-plane world where the daemon ranks are real, so
// tests can originate heartbeats from them: ARM at rank 0, clients at
// ranks 1..nCN, accelerator i's daemon at rank 1+nCN+i.
type healthBed struct {
	s   *sim.Simulation
	w   *minimpi.World
	srv *Server
	nAC int
	nCN int
}

func newHealthBed(t *testing.T, nAC, nCN int, hc HealthConfig) *healthBed {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, 1+nCN+nAC, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	var inventory []Handle
	for i := 0; i < nAC; i++ {
		inventory = append(inventory, Handle{ID: i, Rank: 1 + nCN + i})
	}
	srv, err := NewServer(w.Comm(0), inventory, FIFO)
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.ConfigureHealth(hc); err != nil {
		t.Fatal(err)
	}
	return &healthBed{s: s, w: w, srv: srv, nAC: nAC, nCN: nCN}
}

func (hb *healthBed) daemonRank(i int) int { return 1 + hb.nCN + i }

// beat emits n heartbeats from daemon i, one per interval, reporting the
// given active client ranks.
func (hb *healthBed) beat(i, n int, every sim.Duration, active []int) {
	comm := hb.w.Comm(hb.daemonRank(i))
	hb.s.Spawn(fmt.Sprintf("beater-ac%d", i), func(p *sim.Proc) {
		for k := 0; k < n; k++ {
			p.Wait(every)
			comm.Isend(0, TagRequest, EncodeHeartbeat(active))
		}
	})
}

// run starts the ARM, one process per client function (rank 1+i), and a
// closer that shuts the ARM down when all clients finish.
func (hb *healthBed) run(t *testing.T, clients ...func(p *sim.Proc, c *Client)) {
	t.Helper()
	hb.s.Spawn("arm", hb.srv.Run)
	var procs []*sim.Proc
	for i, fn := range clients {
		r, fn := 1+i, fn
		procs = append(procs, hb.s.Spawn(fmt.Sprintf("cn%d", r), func(p *sim.Proc) {
			fn(p, NewClient(hb.w.Comm(r), 0))
		}))
	}
	hb.s.Spawn("closer", func(p *sim.Proc) {
		for _, cp := range procs {
			cp.Done().Await(p)
		}
		if err := NewClient(hb.w.Comm(1), 0).Shutdown(p); err != nil {
			t.Errorf("shutdown: %v", err)
		}
	})
	if err := hb.s.Run(); err != nil {
		t.Fatal(err)
	}
}

var detectorOnly = HealthConfig{
	HeartbeatInterval: sim.Millisecond,
	SuspectAfter:      3 * sim.Millisecond,
	DeadAfter:         10 * sim.Millisecond,
}

// A daemon that stops beating goes suspect, then dead; one that keeps
// beating stays in the pool. Repair resurrects the dead one.
func TestHealthDetectorSuspectThenDead(t *testing.T) {
	hb := newHealthBed(t, 2, 1, detectorOnly)
	hb.beat(0, 40, sim.Millisecond, nil) // ac0 beats throughout
	// ac1 never beats: silent from t=0.
	hb.run(t, func(p *sim.Proc, c *Client) {
		p.Wait(5 * sim.Millisecond) // past SuspectAfter, before DeadAfter
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Free != 1 || st.Suspect != 1 || st.Failed != 0 {
			t.Fatalf("at 5ms: %+v", st)
		}
		p.Wait(8 * sim.Millisecond) // past DeadAfter
		if st, _ = c.Stats(p); st.Failed != 1 || st.Suspect != 0 || st.Free != 1 {
			t.Fatalf("at 13ms: %+v", st)
		}
		// Dead is administrative-exit-only: Repair brings it back.
		if err := c.Repair(p, 1); err != nil {
			t.Fatalf("repair: %v", err)
		}
		if st, _ = c.Stats(p); st.Free != 2 || st.Failed != 0 {
			t.Fatalf("after repair: %+v", st)
		}
	})
}

// A suspect daemon whose beats resume rejoins the pool without operator
// intervention.
func TestHealthSuspectRecovery(t *testing.T) {
	hb := newHealthBed(t, 1, 1, detectorOnly)
	// Silent for 6ms (suspect at ~3ms), then beats resume.
	hb.s.Spawn("late-beater", func(p *sim.Proc) {
		comm := hb.w.Comm(hb.daemonRank(0))
		p.Wait(6 * sim.Millisecond)
		for k := 0; k < 10; k++ {
			comm.Isend(0, TagRequest, EncodeHeartbeat(nil))
			p.Wait(sim.Millisecond)
		}
	})
	hb.run(t, func(p *sim.Proc, c *Client) {
		p.Wait(5 * sim.Millisecond)
		if st, _ := c.Stats(p); st.Suspect != 1 {
			t.Fatalf("at 5ms: %+v", st)
		}
		p.Wait(3 * sim.Millisecond)
		if st, _ := c.Stats(p); st.Free != 1 || st.Suspect != 0 {
			t.Fatalf("after recovery: %+v", st)
		}
	})
}

// An assigned accelerator on a silent daemon triggers a suspect notice to
// its owner (once), and a dead notice when the detector gives up.
func TestHealthNotices(t *testing.T) {
	hb := newHealthBed(t, 1, 1, detectorOnly)
	hb.run(t, func(p *sim.Proc, c *Client) {
		hs, err := c.Acquire(p, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		nt, err := c.RecvNotice(p)
		if err != nil {
			t.Fatal(err)
		}
		if nt.Kind != NoticeSuspect || nt.ID != hs[0].ID || nt.Rank != hs[0].Rank {
			t.Fatalf("first notice: %+v", nt)
		}
		if nt, err = c.RecvNotice(p); err != nil || nt.Kind != NoticeDead {
			t.Fatalf("second notice: %+v err=%v", nt, err)
		}
		// The dead assignment was revoked: the pool partition reflects it.
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Assigned != 0 || st.Failed != 1 {
			t.Fatalf("after death: %+v", st)
		}
	})
}

// Leases expire without renewal; implicit renewal via requests, daemon
// heartbeats reporting the client active, and explicit Renew all keep an
// assignment alive.
func TestHealthLeaseExpiry(t *testing.T) {
	hc := HealthConfig{HeartbeatInterval: sim.Millisecond, LeaseTTL: 5 * sim.Millisecond}
	hb := newHealthBed(t, 1, 1, hc)
	hb.run(t, func(p *sim.Proc, c *Client) {
		if _, err := c.Acquire(p, 1, false); err != nil {
			t.Fatal(err)
		}
		// Explicit renewals keep it alive well past one TTL.
		for k := 0; k < 4; k++ {
			p.Wait(3 * sim.Millisecond)
			if err := c.Renew(p); err != nil {
				t.Fatalf("renew %d: %v", k, err)
			}
		}
		st, err := c.Stats(p) // a request: also renews implicitly
		if err != nil {
			t.Fatal(err)
		}
		if st.Assigned != 1 || st.Reclaimed != 0 {
			t.Fatalf("while renewing: %+v", st)
		}
		// Now go silent: the lease expires and the ARM reclaims.
		p.Wait(12 * sim.Millisecond)
		if nt, err := c.RecvNotice(p); err != nil || nt.Kind != NoticeRevoked {
			t.Fatalf("notice: %+v err=%v", nt, err)
		}
		if st, _ = c.Stats(p); st.Free != 1 || st.Assigned != 0 || st.Reclaimed != 1 {
			t.Fatalf("after expiry: %+v", st)
		}
	})
}

// A heartbeat naming a client as active renews that client's lease even
// when the client itself never talks to the ARM.
func TestHealthLeasePiggybackRenewal(t *testing.T) {
	hc := HealthConfig{HeartbeatInterval: sim.Millisecond, LeaseTTL: 4 * sim.Millisecond}
	hb := newHealthBed(t, 1, 1, hc)
	hb.beat(0, 20, sim.Millisecond, []int{1}) // daemon reports client rank 1 active
	hb.run(t, func(p *sim.Proc, c *Client) {
		if _, err := c.Acquire(p, 1, false); err != nil {
			t.Fatal(err)
		}
		p.Wait(15 * sim.Millisecond) // nearly 4 TTLs of ARM silence
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Assigned != 1 || st.Reclaimed != 0 {
			t.Fatalf("piggyback renewal failed: %+v", st)
		}
	})
}

// Drain on a free accelerator retires immediately; on an assigned one it
// waits for release (or the deadline) and the retired accelerator leaves
// the operational pool.
func TestHealthDrain(t *testing.T) {
	hb := newHealthBed(t, 2, 2, HealthConfig{HeartbeatInterval: sim.Millisecond})
	hb.beat(0, 30, sim.Millisecond, nil)
	hb.beat(1, 30, sim.Millisecond, nil)
	hb.run(t,
		func(p *sim.Proc, c *Client) { // holder
			hs, err := c.Acquire(p, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			p.Wait(5 * sim.Millisecond)
			if err := c.Release(p, hs); err != nil {
				t.Fatalf("release: %v", err)
			}
		},
		func(p *sim.Proc, c *Client) { // drainer
			p.Wait(sim.Millisecond) // let the holder acquire first
			// ac1 is free: immediate retirement.
			if err := c.Drain(p, 1, 0); err != nil {
				t.Fatalf("drain free: %v", err)
			}
			st, err := c.Stats(p)
			if err != nil {
				t.Fatal(err)
			}
			if st.Retired != 1 {
				t.Fatalf("after free drain: %+v", st)
			}
			// ac0 is held: the drain blocks until the holder releases at
			// ~5ms (the drainer started at 1ms).
			if err := c.Drain(p, 0, 0); err != nil {
				t.Fatalf("drain assigned: %v", err)
			}
			if p.Now() < sim.Time(5*sim.Millisecond) {
				t.Fatalf("drain returned at %v, before the holder released", p.Now())
			}
			if st, _ = c.Stats(p); st.Retired != 2 {
				t.Fatalf("after assigned drain: %+v", st)
			}
			// Nothing left to grant.
			if _, err := c.Acquire(p, 1, false); !errors.Is(err, ErrImpossible) {
				t.Fatalf("acquire from fully retired pool: %v", err)
			}
		})
}

// A drain deadline forcibly revokes a holder that does not release.
func TestHealthDrainDeadline(t *testing.T) {
	hb := newHealthBed(t, 1, 2, HealthConfig{HeartbeatInterval: sim.Millisecond, LeaseTTL: 50 * sim.Millisecond})
	hb.beat(0, 40, sim.Millisecond, []int{1}) // holder's lease stays renewed
	hb.run(t,
		func(p *sim.Proc, c *Client) { // stubborn holder
			if _, err := c.Acquire(p, 1, false); err != nil {
				t.Fatal(err)
			}
			if nt, err := c.RecvNotice(p); err != nil || nt.Kind != NoticeRevoked {
				t.Fatalf("notice: %+v err=%v", nt, err)
			}
		},
		func(p *sim.Proc, c *Client) { // drainer
			p.Wait(sim.Millisecond)
			start := p.Now()
			if err := c.Drain(p, 0, 5*sim.Millisecond); err != nil {
				t.Fatalf("drain: %v", err)
			}
			if waited := p.Now().Sub(start); waited < 5*sim.Millisecond || waited > 8*sim.Millisecond {
				t.Fatalf("drain settled after %v, want ~deadline", waited)
			}
			st, err := c.Stats(p)
			if err != nil {
				t.Fatal(err)
			}
			if st.Retired != 1 || st.Assigned != 0 {
				t.Fatalf("after forced drain: %+v", st)
			}
		})
}

// The migrate op trades a held assignment for a spare; the surrendered
// accelerator is sanitized back into the pool when its daemon beats.
func TestHealthMigrateOp(t *testing.T) {
	hb := newHealthBed(t, 2, 1, detectorOnly)
	hb.beat(0, 40, sim.Millisecond, nil)
	hb.beat(1, 40, sim.Millisecond, nil)
	hb.run(t, func(p *sim.Proc, c *Client) {
		hs, err := c.Acquire(p, 1, false)
		if err != nil {
			t.Fatal(err)
		}
		h, err := c.Migrate(p, hs[0].Rank)
		if err != nil {
			t.Fatalf("migrate: %v", err)
		}
		if h.Rank == hs[0].Rank {
			t.Fatalf("migrate returned the same rank %d", h.Rank)
		}
		p.Wait(3 * sim.Millisecond) // old daemon beats; no sanitizer wired -> straight to free
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Assigned != 1 || st.Free != 1 || st.Migrations != 1 {
			t.Fatalf("after migrate: %+v", st)
		}
		// Migrating a rank we do not hold is a bad request.
		if _, err := c.Migrate(p, hs[0].Rank); !errors.Is(err, ErrBadRequest) {
			t.Fatalf("bogus migrate: %v", err)
		}
		if err := c.Release(p, []Handle{h}); err != nil {
			t.Fatalf("release: %v", err)
		}
	})
}

// Reclaim runs the wired sanitizer before the accelerator re-enters the
// pool, and a failing sanitizer parks it as failed instead.
func TestHealthSanitizerGate(t *testing.T) {
	hc := HealthConfig{HeartbeatInterval: sim.Millisecond, LeaseTTL: 4 * sim.Millisecond}
	hb := newHealthBed(t, 2, 1, hc)
	sanitized := make(map[int]int)
	hb.srv.SetSanitizer(func(p *sim.Proc, rank int) error {
		p.Wait(100 * sim.Microsecond) // a real reset takes time
		sanitized[rank]++
		if rank == hb.daemonRank(1) {
			return errors.New("reset rejected")
		}
		return nil
	})
	hb.run(t, func(p *sim.Proc, c *Client) {
		if _, err := c.Acquire(p, 2, false); err != nil {
			t.Fatal(err)
		}
		p.Wait(10 * sim.Millisecond) // both leases expire
		st, err := c.Stats(p)
		if err != nil {
			t.Fatal(err)
		}
		if st.Free != 1 || st.Failed != 1 || st.Reclaimed != 2 {
			t.Fatalf("after sanitize: %+v", st)
		}
		if sanitized[hb.daemonRank(0)] != 1 || sanitized[hb.daemonRank(1)] != 1 {
			t.Fatalf("sanitizer calls: %v", sanitized)
		}
	})
}

func TestBackoffDelayDeterministic(t *testing.T) {
	b := Backoff{Base: sim.Millisecond, Cap: 8 * sim.Millisecond, Factor: 2}
	want := []sim.Duration{sim.Millisecond, 2 * sim.Millisecond, 4 * sim.Millisecond,
		8 * sim.Millisecond, 8 * sim.Millisecond}
	for i, w := range want {
		if got := b.Delay(i, nil); got != w {
			t.Errorf("Delay(%d) = %v, want %v", i, got, w)
		}
	}
	// Jitter only ever shortens, never beyond the jitter band.
	jb := DefaultBackoff()
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 6; i++ {
		full := Backoff{Base: jb.Base, Cap: jb.Cap, Factor: jb.Factor}.Delay(i, nil)
		got := jb.Delay(i, rng)
		if got > full || float64(got) < float64(full)*(1-jb.Jitter) {
			t.Errorf("jittered Delay(%d) = %v outside [%v, %v]", i, got,
				sim.Duration(float64(full)*(1-jb.Jitter)), full)
		}
	}
}

// AcquireRetry rides out transient exhaustion that a plain non-blocking
// Acquire would surface immediately.
func TestAcquireRetryBacksOff(t *testing.T) {
	hb := newHealthBed(t, 1, 2, HealthConfig{HeartbeatInterval: sim.Millisecond})
	hb.beat(0, 30, sim.Millisecond, nil)
	b := Backoff{Base: sim.Millisecond, Cap: 4 * sim.Millisecond, Factor: 2}
	hb.run(t,
		func(p *sim.Proc, c *Client) { // transient holder
			hs, err := c.Acquire(p, 1, false)
			if err != nil {
				t.Fatal(err)
			}
			p.Wait(3 * sim.Millisecond)
			if err := c.Release(p, hs); err != nil {
				t.Fatal(err)
			}
		},
		func(p *sim.Proc, c *Client) {
			p.Wait(sim.Millisecond)
			if _, err := c.Acquire(p, 1, false); !errors.Is(err, ErrUnavailable) {
				t.Fatalf("plain acquire: %v", err)
			}
			hs, err := c.AcquireRetry(p, 1, 5, b, nil)
			if err != nil {
				t.Fatalf("AcquireRetry: %v", err)
			}
			if err := c.Release(p, hs); err != nil {
				t.Fatal(err)
			}
		})
}
