package arm

// shard_test.go exercises the sharded control plane end to end at the
// protocol level: peer forwarding, least-loaded fallback, elastic
// register/retire, and follower promotion with lease continuity. The
// worlds here are control-plane only (synthetic daemon ranks), like
// arm_test.go's pool.

import (
	"fmt"
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// shardPool is a test world with nCN client ranks (0..nCN-1), one leader
// rank per shard, and — with replicas — one follower rank per shard.
type shardPool struct {
	t        *testing.T
	s        *sim.Simulation
	w        *minimpi.World
	dir      *Directory
	srvs    []*Server
	reps    []*Replica
	clients []*ShardedClient
	nCN     int
}

func newShardPool(t *testing.T, nAC, nCN, shards int, replicas bool) *shardPool {
	t.Helper()
	s := sim.New()
	armRanks := shards
	if replicas {
		armRanks *= 2
	}
	w, err := minimpi.NewWorld(s, nCN+armRanks, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatal(err)
	}
	leaders := make([]int, shards)
	var followers []int
	for sh := 0; sh < shards; sh++ {
		leaders[sh] = nCN + sh
	}
	if replicas {
		followers = make([]int, shards)
		for sh := 0; sh < shards; sh++ {
			followers[sh] = nCN + shards + sh
		}
	}
	dir := NewDirectory(NewRing(shards), leaders, followers)
	perShard := make([][]Handle, shards)
	for id := 0; id < nAC; id++ {
		sh := dir.OwnerOf(id)
		perShard[sh] = append(perShard[sh], Handle{ID: id, Rank: 100 + id})
	}
	sp := &shardPool{t: t, s: s, w: w, dir: dir, nCN: nCN}
	for sh := 0; sh < shards; sh++ {
		opts := Options{Shards: shards, Shard: sh, Directory: dir}
		srv, err := NewServerOpts(w.Comm(leaders[sh]), perShard[sh], opts)
		if err != nil {
			t.Fatal(err)
		}
		sp.srvs = append(sp.srvs, srv)
		s.Spawn(fmt.Sprintf("arm-s%d", sh), srv.Run)
		if replicas {
			rp, err := ReplicaFor(w.Comm(followers[sh]), dir, sh, perShard[sh], opts, 0)
			if err != nil {
				t.Fatal(err)
			}
			sp.reps = append(sp.reps, rp)
			s.Spawn(fmt.Sprintf("arm-s%d-replica", sh), rp.Run)
		}
	}
	// One client instance per rank, shared with the closer: a rank's
	// reqID sequence must stay monotonic for the dedup cache.
	for r := 0; r < nCN; r++ {
		sp.clients = append(sp.clients, NewShardedClient(w.Comm(r), dir))
	}
	return sp
}

// run spawns each client function, then tears the shard fleet down:
// standby followers are stopped first (they would otherwise promote into
// the silence left by leader shutdown), then every live serving shard is
// stopped.
func (sp *shardPool) run(client func(p *sim.Proc, c *ShardedClient, rank int)) {
	sp.t.Helper()
	var procs []*sim.Proc
	for r := 0; r < sp.nCN; r++ {
		r := r
		procs = append(procs, sp.s.Spawn(fmt.Sprintf("cn%d", r), func(p *sim.Proc) {
			client(p, sp.clients[r], r)
		}))
	}
	sp.s.Spawn("closer", func(p *sim.Proc) {
		for _, cp := range procs {
			cp.Done().Await(p)
		}
		for _, rp := range sp.reps {
			rp.Stop() // no-op on a promoted replica
		}
		for sh, srv := range sp.srvs {
			if len(sp.reps) > 0 && sp.reps[sh].Promoted() {
				srv = sp.reps[sh].Server()
			}
			if srv.Closed() {
				continue
			}
			if err := sp.clients[0].ShutdownShard(p, sh); err != nil {
				sp.t.Errorf("shutdown shard %d: %v", sh, err)
			}
		}
	})
	if err := sp.s.Run(); err != nil {
		sp.t.Fatal(err)
	}
}

func TestShardedAcquireReleaseStats(t *testing.T) {
	// 9 accelerators over 3 shards (ring splits them 4/3/2); two clients
	// each take 3, so at least one acquire crosses shards.
	sp := newShardPool(t, 9, 2, 3, false)
	sp.run(func(p *sim.Proc, c *ShardedClient, rank int) {
		p.Wait(3 * sim.Millisecond) // let load gossip warm up
		handles, err := c.Acquire(p, 1, true)
		if err != nil {
			t.Errorf("cn%d acquire: %v", rank, err)
			return
		}
		for i := 0; i < 2; i++ {
			hs, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Errorf("cn%d acquire %d: %v", rank, i, err)
				return
			}
			handles = append(handles, hs...)
		}
		seen := map[int]bool{}
		for _, h := range handles {
			if h.Rank != 100+h.ID {
				t.Errorf("handle %d has rank %d", h.ID, h.Rank)
			}
			if seen[h.ID] {
				t.Errorf("cn%d holds accelerator %d twice", rank, h.ID)
			}
			seen[h.ID] = true
		}
		st, err := c.Stats(p)
		if err != nil {
			t.Errorf("stats: %v", err)
			return
		}
		if st.Total != 9 {
			t.Errorf("aggregate Total = %d, want 9", st.Total)
		}
		if err := c.Release(p, handles); err != nil {
			t.Errorf("cn%d release: %v", rank, err)
		}
		if rank == 0 {
			p.Wait(5 * sim.Millisecond) // let the peer finish releasing
			st, err := c.Stats(p)
			if err != nil {
				t.Errorf("final stats: %v", err)
				return
			}
			if st.Free != 9 || st.Assigned != 0 {
				t.Errorf("final stats: Free=%d Assigned=%d, want 9/0", st.Free, st.Assigned)
			}
		}
	})
}

func TestShardedCrossShardFallback(t *testing.T) {
	// One client drains the whole 6-accelerator fleet one handle at a
	// time: once its home shard is empty, grants must come from the
	// least-loaded peers via forwarding.
	const nAC = 6
	sp := newShardPool(t, nAC, 1, 3, false)
	for sh := 0; sh < 3; sh++ {
		owns := 0
		for id := 0; id < nAC; id++ {
			if sp.dir.OwnerOf(id) == sh {
				owns++
			}
		}
		if owns == 0 {
			t.Fatalf("ring gives shard %d no accelerators; pick different test sizes", sh)
		}
	}
	sp.run(func(p *sim.Proc, c *ShardedClient, rank int) {
		p.Wait(3 * sim.Millisecond)
		var handles []Handle
		shardsUsed := map[int]bool{}
		for i := 0; i < nAC; i++ {
			hs, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Errorf("acquire %d: %v", i, err)
				return
			}
			handles = append(handles, hs...)
			shardsUsed[sp.dir.OwnerOf(hs[0].ID)] = true
		}
		if len(shardsUsed) != 3 {
			t.Errorf("grants came from shards %v, want all 3", shardsUsed)
		}
		st, err := c.Stats(p)
		if err != nil {
			t.Errorf("stats: %v", err)
			return
		}
		if st.Free != 0 || st.Assigned != nAC {
			t.Errorf("drained stats: Free=%d Assigned=%d, want 0/%d", st.Free, st.Assigned, nAC)
		}
		// The fleet is empty and gossip knows it: one more non-blocking
		// acquire must come back unavailable, not hang or double-grant.
		if _, err := c.Acquire(p, 1, false); err != ErrUnavailable {
			t.Errorf("acquire on empty fleet: %v, want ErrUnavailable", err)
		}
		if err := c.Release(p, handles); err != nil {
			t.Errorf("release: %v", err)
		}
	})
}

func TestShardedRegisterRetire(t *testing.T) {
	sp := newShardPool(t, 3, 1, 3, false)
	sp.run(func(p *sim.Proc, c *ShardedClient, rank int) {
		p.Wait(3 * sim.Millisecond)
		// Elastic grow: admit two new accelerators into the live fleet.
		for _, id := range []int{3, 4} {
			if err := c.Register(p, id, 100+id); err != nil {
				t.Errorf("register %d: %v", id, err)
				return
			}
		}
		if err := c.Register(p, 3, 103); err != ErrBadRequest {
			t.Errorf("duplicate register: %v, want ErrBadRequest", err)
		}
		st, err := c.StatsEx(p)
		if err != nil {
			t.Errorf("statsex: %v", err)
			return
		}
		if st.Total != 5 || len(st.PerAccel) != 5 {
			t.Errorf("after grow: Total=%d PerAccel=%d, want 5/5", st.Total, len(st.PerAccel))
		}
		for i, pa := range st.PerAccel {
			if pa.ID != i {
				t.Errorf("PerAccel[%d].ID = %d (aggregate not sorted)", i, pa.ID)
			}
		}
		// The registered accelerators are real pool members: drain the
		// whole fleet through them.
		handles, err := c.Acquire(p, 1, true)
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		for i := 0; i < 4; i++ {
			hs, err := c.Acquire(p, 1, true)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			handles = append(handles, hs...)
		}
		if err := c.Release(p, handles); err != nil {
			t.Errorf("release: %v", err)
			return
		}
		// Elastic shrink: retire one original and one registered
		// accelerator; both must leave the inventory for good.
		for _, id := range []int{0, 4} {
			if err := c.Retire(p, id, 0); err != nil {
				t.Errorf("retire %d: %v", id, err)
				return
			}
		}
		if err := c.Retire(p, 0, 0); err != ErrBadRequest {
			t.Errorf("retire of removed accelerator: %v, want ErrBadRequest", err)
		}
		st, err = c.StatsEx(p)
		if err != nil {
			t.Errorf("statsex: %v", err)
			return
		}
		if st.Total != 3 || st.Retired != 0 || len(st.PerAccel) != 3 {
			t.Errorf("after shrink: Total=%d Retired=%d PerAccel=%d, want 3/0/3",
				st.Total, st.Retired, len(st.PerAccel))
		}
		for _, pa := range st.PerAccel {
			if pa.ID == 0 || pa.ID == 4 {
				t.Errorf("retired accelerator %d still in inventory", pa.ID)
			}
		}
	})
}

func TestShardedFailoverPromotion(t *testing.T) {
	// Kill the leader owning the client's handles mid-session: the
	// follower must promote, the replicated ownership must survive, and
	// the client must fail over transparently on its next calls.
	sp := newShardPool(t, 4, 1, 2, true)
	sp.run(func(p *sim.Proc, c *ShardedClient, rank int) {
		p.Wait(3 * sim.Millisecond)
		handles, err := c.Acquire(p, 2, true)
		if err != nil {
			t.Errorf("acquire: %v", err)
			return
		}
		victim := sp.dir.OwnerOf(handles[0].ID)
		sp.srvs[victim].Kill()
		// Promotion fires after DeadAfter (20ms) of replication silence;
		// the client's failover timeout is twice that.
		p.Wait(70 * sim.Millisecond)
		if !sp.dir.Promoted(victim) || !sp.reps[victim].Promoted() {
			t.Errorf("shard %d not promoted after leader death", victim)
			return
		}
		st, err := c.Stats(p)
		if err != nil {
			t.Errorf("stats after failover: %v", err)
			return
		}
		if st.Total != 4 || st.Assigned != 2 {
			t.Errorf("post-failover stats: Total=%d Assigned=%d, want 4/2", st.Total, st.Assigned)
		}
		// The promoted follower learned the leases from the replication
		// stream: releasing through it must succeed.
		if err := c.Release(p, handles); err != nil {
			t.Errorf("release after failover: %v", err)
			return
		}
		st, err = c.Stats(p)
		if err != nil {
			t.Errorf("final stats: %v", err)
			return
		}
		if st.Free != 4 || st.Assigned != 0 {
			t.Errorf("final stats: Free=%d Assigned=%d, want 4/0", st.Free, st.Assigned)
		}
	})
}
