// Package conformance runs one minimpi test battery — point-to-point,
// wildcards and probes, collectives, extras, owned-buffer handoff — against
// every Transport backend through a shared harness: the in-sim backend (one
// world, one simulation) and the socket backend (one single-rank world per
// process, wired over real loopback TCP). A behavior difference between the
// backends is a transport bug by definition; the sim path is the oracle.
package conformance
