package conformance

import (
	"fmt"
	"net"
	"testing"
	"time"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/nettrans"
	"dynacc/internal/sim"
)

// rankFn is one rank's body in a conformance scenario.
type rankFn func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm)

// backend runs an n-rank scenario to completion.
type backend struct {
	name string
	run  func(t *testing.T, n int, fn rankFn)
}

func backends() []backend {
	return []backend{
		{name: "sim", run: runSim},
		{name: "socket", run: runSocket},
	}
}

// testNet keeps the eager threshold low so payload sends exercise the
// in-sim rendezvous path too; the socket path is always eager.
func testNet() netmodel.Params {
	return netmodel.Params{
		Name:           "conformance",
		Latency:        1 * sim.Microsecond,
		Bandwidth:      1e9,
		SendOverhead:   100 * sim.Nanosecond,
		RecvOverhead:   100 * sim.Nanosecond,
		EagerThreshold: 4 * netmodel.KiB,
		RendezvousRTT:  2 * sim.Microsecond,
	}
}

// runSim executes the scenario on the in-sim backend: one world, every
// rank a process of the same simulation.
func runSim(t *testing.T, n int, fn rankFn) {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, n, testNet())
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < n; r++ {
		c := w.Comm(r)
		s.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) { fn(p, w, c) })
	}
	if err := s.Run(); err != nil {
		t.Fatal(err)
	}
}

// runSocket executes the scenario on the socket backend: one process per
// rank, each with its own simulation, world and transport, joined over
// loopback TCP and driven by RunRealtime.
func runSocket(t *testing.T, n int, fn rankFn) {
	t.Helper()
	lns := make([]net.Listener, n)
	procs := make([]nettrans.ProcSpec, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		procs[i] = nettrans.ProcSpec{Addr: ln.Addr().String(), Ranks: []int{i}}
	}
	type nodeState struct {
		s    *sim.Simulation
		w    *minimpi.World
		tr   *nettrans.Transport
		stop chan struct{}
		done chan error
	}
	nodes := make([]*nodeState, n)
	for i := range nodes {
		s := sim.New()
		w, err := minimpi.NewWorld(s, n, testNet())
		if err != nil {
			t.Fatal(err)
		}
		tr, err := nettrans.New(nettrans.Config{
			World:       w,
			ProcID:      i,
			Procs:       procs,
			Listener:    lns[i],
			Token:       "conformance",
			DialBackoff: 5 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("nettrans.New(proc %d): %v", i, err)
		}
		w.SetTransport(tr)
		nd := &nodeState{s: s, w: w, tr: tr, stop: make(chan struct{}), done: make(chan error, 1)}
		go func() { nd.done <- s.RunRealtime(nd.stop) }()
		nodes[i] = nd
	}
	defer func() {
		for _, nd := range nodes {
			close(nd.stop)
			if err := <-nd.done; err != nil {
				t.Errorf("RunRealtime: %v", err)
			}
			nd.tr.Close()
			if st := nd.tr.Stats(); st.HandshakeFailures != 0 {
				t.Errorf("handshake failures on a conformance run: %+v", st)
			}
		}
	}()

	finished := make([]chan struct{}, n)
	for i := range nodes {
		r := i
		nd := nodes[i]
		ch := make(chan struct{})
		finished[r] = ch
		nd.s.Inject(func() {
			nd.s.Spawn(fmt.Sprintf("rank%d", r), func(p *sim.Proc) {
				defer close(ch)
				fn(p, nd.w, nd.w.Comm(r))
			})
		})
	}
	for r, ch := range finished {
		select {
		case <-ch:
		case <-time.After(15 * time.Second):
			t.Fatalf("rank %d did not finish", r)
		}
	}
}

// forEachBackend runs the scenario as a subtest per backend.
func forEachBackend(t *testing.T, n int, fn rankFn) {
	for _, b := range backends() {
		b := b
		t.Run(b.name, func(t *testing.T) { b.run(t, n, fn) })
	}
}

// TestP2P covers blocking and nonblocking sends, sized (metadata-only)
// sends, and tag selectivity on one battery.
func TestP2P(t *testing.T) {
	payload := []byte("conformance payload: both backends must agree")
	forEachBackend(t, 3, func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(p, 1, 7, payload)
			c.SendSized(p, 1, 8, 1<<20)
			// Out-of-order tags: rank 2 posts tag 21 first, but we send
			// tag 20 first; matching must be by tag, not arrival.
			r1 := c.Isend(2, 20, []byte("twenty"))
			r2 := c.Isend(2, 21, []byte("twentyone"))
			minimpi.WaitAll(p, r1, r2)
		case 1:
			data, st := c.Recv(p, 0, 7)
			if string(data) != string(payload) || st.Source != 0 || st.Tag != 7 || st.Size != len(payload) {
				t.Errorf("rank 1 payload recv: %q %+v", data, st)
			}
			data, st = c.Recv(p, 0, 8)
			if data != nil || st.Size != 1<<20 {
				t.Errorf("rank 1 sized recv: %d bytes, %+v", len(data), st)
			}
		case 2:
			r21 := c.Irecv(0, 21)
			r20 := c.Irecv(0, 20)
			d21, _ := r21.Wait(p)
			d20, _ := r20.Wait(p)
			if string(d20) != "twenty" || string(d21) != "twentyone" {
				t.Errorf("tag-selective recv: 20=%q 21=%q", d20, d21)
			}
		}
	})
}

// TestWildcardsAndProbe covers AnySource/AnyTag receives and blocking
// probes with matching status.
func TestWildcardsAndProbe(t *testing.T) {
	forEachBackend(t, 3, func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm) {
		switch c.Rank() {
		case 0:
			c.Send(p, 2, 5, []byte("from-zero"))
		case 1:
			c.Send(p, 2, 6, []byte("from-one"))
		case 2:
			st := c.Probe(p, 0, 5)
			if st.Source != 0 || st.Tag != 5 || st.Size != len("from-zero") {
				t.Errorf("probe status %+v", st)
			}
			if _, ok := c.Iprobe(0, 5); !ok {
				t.Error("Iprobe missed a probed message")
			}
			got := map[string]bool{}
			for i := 0; i < 2; i++ {
				data, st := c.Recv(p, minimpi.AnySource, minimpi.AnyTag)
				got[string(data)] = true
				if st.Source != 0 && st.Source != 1 {
					t.Errorf("wildcard source %+v", st)
				}
			}
			if !got["from-zero"] || !got["from-one"] {
				t.Errorf("wildcard recvs got %v", got)
			}
		}
	})
}

// TestCollectives runs the full collective battery on four ranks.
func TestCollectives(t *testing.T) {
	const n = 4
	forEachBackend(t, n, func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm) {
		r := c.Rank()
		c.Barrier(p)

		var bdata []byte
		if r == 1 {
			bdata = []byte{42}
		}
		if got := c.Bcast(p, 1, bdata); len(got) != 1 || got[0] != 42 {
			t.Errorf("rank %d Bcast got %v", r, got)
		}

		red := c.Reduce(p, 0, minimpi.F64Bytes([]float64{float64(r + 1)}), minimpi.SumF64)
		if r == 0 {
			if got := minimpi.BytesF64(red)[0]; got != 10 {
				t.Errorf("Reduce sum = %v, want 10", got)
			}
		}

		mx := c.Allreduce(p, minimpi.F64Bytes([]float64{float64(r)}), minimpi.MaxF64)
		if got := minimpi.BytesF64(mx)[0]; got != n-1 {
			t.Errorf("rank %d Allreduce max = %v, want %d", r, got, n-1)
		}

		gat := c.Gather(p, 3, []byte{byte(r), byte(r * 10)})
		if r == 3 {
			for i, part := range gat {
				if len(part) != 2 || part[0] != byte(i) || part[1] != byte(i*10) {
					t.Errorf("Gather part %d = %v", i, part)
				}
			}
		}

		all := c.Allgather(p, []byte{byte(r + 100)})
		for i, part := range all {
			if len(part) != 1 || part[0] != byte(i+100) {
				t.Errorf("rank %d Allgather part %d = %v", r, i, part)
			}
		}

		var parts [][]byte
		if r == 0 {
			for i := 0; i < n; i++ {
				parts = append(parts, []byte{byte(i), byte(i + 1)})
			}
		}
		sc := c.Scatter(p, 0, parts)
		if len(sc) != 2 || sc[0] != byte(r) || sc[1] != byte(r+1) {
			t.Errorf("rank %d Scatter got %v", r, sc)
		}
	})
}

// TestExtras covers Sendrecv ring shifts, Alltoall, and derived
// communicators (Split/Dup) whose contexts must survive the wire.
func TestExtras(t *testing.T) {
	const n = 4
	forEachBackend(t, n, func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm) {
		r := c.Rank()

		// Ring shift: send to the right, receive from the left.
		right, left := (r+1)%n, (r+n-1)%n
		data, st := c.Sendrecv(p, right, 9, []byte{byte(r)}, left, 9)
		if len(data) != 1 || data[0] != byte(left) || st.Source != left {
			t.Errorf("rank %d Sendrecv got %v from %d", r, data, st.Source)
		}

		// Alltoall with rank-stamped parts.
		parts := make([][]byte, n)
		for j := range parts {
			parts[j] = []byte{byte(r), byte(j)}
		}
		out := c.Alltoall(p, parts)
		for j, part := range out {
			if len(part) != 2 || part[0] != byte(j) || part[1] != byte(r) {
				t.Errorf("rank %d Alltoall part %d = %v", r, j, part)
			}
		}

		// Split into even/odd subcomms; broadcast within each.
		color := r % 2
		sub := c.Split(p, color, r)
		var sdata []byte
		if sub.Rank() == 0 {
			sdata = []byte{byte(color + 50)}
		}
		if got := sub.Bcast(p, 0, sdata); len(got) != 1 || got[0] != byte(color+50) {
			t.Errorf("rank %d subcomm Bcast got %v", r, got)
		}
		sub.Barrier(p)

		// Dup: independent context, same group.
		d := c.Dup(p)
		sum := d.Allreduce(p, minimpi.F64Bytes([]float64{1}), minimpi.SumF64)
		if got := minimpi.BytesF64(sum)[0]; got != n {
			t.Errorf("rank %d Dup Allreduce = %v, want %d", r, got, n)
		}
	})
}

// TestPoolOwnership covers the portable IsendOwned contract: the payload
// arrives intact however the backend recycles the buffer, and Free on the
// receive side is always safe.
func TestPoolOwnership(t *testing.T) {
	const n = 3
	const sz = 2048
	forEachBackend(t, n, func(p *sim.Proc, w *minimpi.World, c *minimpi.Comm) {
		if c.Rank() == 0 {
			for dst := 1; dst < n; dst++ {
				buf := w.GetBuf(sz)
				for i := range buf {
					buf[i] = byte('A' + dst)
				}
				c.IsendOwned(dst, 11, buf).Wait(p)
			}
			return
		}
		req := c.Irecv(0, 11)
		data, st := req.Wait(p)
		if st.Size != sz || len(data) != sz {
			t.Errorf("rank %d owned recv size %d/%d", c.Rank(), len(data), st.Size)
		}
		for i, bb := range data {
			if bb != byte('A'+c.Rank()) {
				t.Errorf("rank %d owned payload corrupt at %d: %q", c.Rank(), i, bb)
				break
			}
		}
		req.Free()
	})
}
