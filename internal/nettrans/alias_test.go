package nettrans

import (
	"net"
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
)

// deadAddr returns a loopback address nothing listens on.
func deadAddr(t *testing.T) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	addr := ln.Addr().String()
	ln.Close()
	return addr
}

// TestFrameCopyOutlivesEncoderReset pins the copy-on-enqueue contract:
// Deliver encodes every remote message through one persistent scratch
// wire.Writer, so a queued frame outlives many Resets of that encoder —
// and the caller may reuse its own payload buffer the moment the send
// completes locally. Three sends share a single caller buffer, each
// overwriting the last; with the peer unreachable all three frames sit in
// the outbox, where each must still carry its original bytes.
func TestFrameCopyOutlivesEncoderReset(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	procs := []ProcSpec{
		{Addr: ln.Addr().String(), Ranks: []int{0}},
		{Addr: deadAddr(t), Ranks: []int{1}},
	}
	a := startNode(t, 2, 0, procs, ln, nil)
	defer a.halt()

	sizes := []int{48, 7, 160}
	done := a.run("enqueue", func(p *sim.Proc) {
		c := a.w.Comm(0)
		scratch := make([]byte, 160)
		for i, sz := range sizes {
			for j := 0; j < sz; j++ {
				scratch[j] = byte('A' + i)
			}
			// Remote sends complete locally at Deliver time, so Wait
			// returns with no peer — and the next loop iteration is then
			// free to clobber scratch.
			c.Isend(1, minimpi.Tag(i+1), scratch[:sz]).Wait(p)
		}
	})
	wait(t, done, "enqueue of aliased sends")

	pr := a.tr.peers[1]
	pr.mu.Lock()
	queued := make([][]byte, 0, len(pr.queue)-pr.head)
	for _, f := range pr.queue[pr.head:] {
		queued = append(queued, append([]byte(nil), f...))
	}
	pr.mu.Unlock()

	if len(queued) != len(sizes) {
		t.Fatalf("outbox holds %d frames, want %d", len(queued), len(sizes))
	}
	for i, frame := range queued {
		if len(frame) < lenPrefixSize {
			t.Fatalf("frame %d truncated: %d bytes", i, len(frame))
		}
		env, payload, err := decodeMsgBody(frame[lenPrefixSize:])
		if err != nil {
			t.Fatalf("frame %d does not decode: %v", i, err)
		}
		if env.Tag != minimpi.Tag(i+1) || env.Src != 0 || env.Dst != 1 {
			t.Errorf("frame %d envelope = %+v", i, env)
		}
		if len(payload) != sizes[i] {
			t.Fatalf("frame %d payload %dB, want %dB", i, len(payload), sizes[i])
		}
		for j, bb := range payload {
			if bb != byte('A'+i) {
				t.Fatalf("frame %d byte %d = %q: clobbered by a later encoder Reset or caller reuse", i, j, bb)
			}
		}
	}
}

// TestEncodeEnqueueSteadyStateAllocs bounds the per-frame allocation cost
// of the socket send path at steady state: encode into the persistent
// scratch writer, copy into a pooled frame, return the frame. The only
// unavoidable allocation is the slice-header boxing on the sync.Pool
// round-trip, so anything beyond two allocations per frame means the
// scratch writer or the pool stopped being reused.
func TestEncodeEnqueueSteadyStateAllocs(t *testing.T) {
	var tr Transport
	env := minimpi.Envelope{Src: 0, Dst: 1, Ctx: 2, Tag: 42, Size: 4096}
	payload := make([]byte, 4096)
	frame := func() {
		tr.encw.Reset()
		appendMsgFrame(&tr.encw, env, payload)
		f := tr.getFrame(tr.encw.Len())
		copy(f, tr.encw.Bytes())
		tr.putFrame(f)
	}
	frame() // warm the writer and the pool
	if allocs := testing.AllocsPerRun(100, frame); allocs > 2 {
		t.Errorf("encode+enqueue allocates %.1f objects per frame, want <= 2", allocs)
	}
}
