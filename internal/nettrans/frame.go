package nettrans

import (
	"fmt"
	"io"

	"dynacc/internal/minimpi"
	"dynacc/internal/wire"
)

// Stream format: every frame travels as [u32 length][body], length counting
// the body only. Bodies start with a one-byte kind and use the wire codec
// (little-endian, length-prefixed strings) for the rest. Three kinds exist:
// the connection handshake pair (hello/welcome) and the message frame that
// carries one minimpi envelope plus payload.

// ProtocolVersion is the wire protocol revision. Connections between
// mismatched versions are refused during the handshake.
const ProtocolVersion uint32 = 1

// helloMagic opens every hello body so a stray connection from something
// that is not a dynacc transport fails fast, before any length prefix is
// trusted. "DACT" little-endian.
const helloMagic uint32 = 0x54434144

// Frame kinds.
const (
	kindMsg     = 1
	kindHello   = 2
	kindWelcome = 3
)

// DefaultMaxFrame bounds a single frame body. Larger pipelined transfers
// are already split into blocks well under this by the copy pipelines.
const DefaultMaxFrame = 64 << 20

// lenPrefixSize is the stream length prefix.
const lenPrefixSize = 4

// maxHandshakeFrame bounds hello/welcome bodies: a rank-claim list plus a
// refusal reason fits far under this.
const maxHandshakeFrame = 1 << 16

// msgHeaderSize is the fixed-size header of a kindMsg body: kind byte,
// four u32 fields (dst, src, srcComm, ctx), i64 tag, u64 size and the
// has-payload flag.
const msgHeaderSize = 1 + 4*4 + 8 + 8 + 1

// appendMsgFrame appends a length-prefixed message frame to buf. The tag
// is encoded as i64: collective tags are negative and must round-trip.
func appendMsgFrame(w *wire.Writer, env minimpi.Envelope, payload []byte) {
	w.U32(uint32(msgHeaderSize + len(payload)))
	w.U8(kindMsg)
	w.U32(uint32(env.Dst))
	w.U32(uint32(env.Src))
	w.U32(uint32(env.SrcComm))
	w.U32(uint32(env.Ctx))
	w.I64(int64(env.Tag))
	w.U64(uint64(env.Size))
	if payload != nil {
		w.U8(1)
		w.Raw(payload)
	} else {
		w.U8(0)
	}
}

// decodeMsgBody parses a kindMsg frame body (kind byte already consumed by
// the caller's peek, but still present in body). The returned payload
// aliases body; the caller hands the whole buffer over to the World.
func decodeMsgBody(body []byte) (minimpi.Envelope, []byte, error) {
	r := wire.NewReader(body)
	if k := r.U8(); k != kindMsg {
		return minimpi.Envelope{}, nil, fmt.Errorf("nettrans: frame kind %d, want message", k)
	}
	env := minimpi.Envelope{
		Dst:     int(int32(r.U32())),
		Src:     int(int32(r.U32())),
		SrcComm: int(int32(r.U32())),
		Ctx:     int(int32(r.U32())),
		Tag:     minimpi.Tag(r.I64()),
		Size:    int(int64(r.U64())),
	}
	hasPayload := r.U8() != 0
	var payload []byte
	if hasPayload {
		payload = r.Rest()
	} else if r.Remaining() != 0 {
		return minimpi.Envelope{}, nil, fmt.Errorf("nettrans: %d trailing bytes after sized-send frame", r.Remaining())
	}
	if err := r.Err(); err != nil {
		return minimpi.Envelope{}, nil, err
	}
	if env.Size < 0 {
		return minimpi.Envelope{}, nil, fmt.Errorf("nettrans: negative envelope size %d", env.Size)
	}
	if hasPayload && len(payload) != env.Size {
		return minimpi.Envelope{}, nil, fmt.Errorf("nettrans: payload %dB does not match envelope size %dB", len(payload), env.Size)
	}
	return env, payload, nil
}

// hello is the handshake opener: the dialer claims a proc id and the exact
// rank set the shared topology assigns to it, and proves membership with
// the connection token.
type hello struct {
	version uint32
	procID  int
	ranks   []int
	token   string
}

func appendHello(w *wire.Writer, h hello) {
	body := wire.NewWriter(64)
	body.U8(kindHello)
	body.U32(helloMagic)
	body.U32(h.version)
	body.U32(uint32(h.procID))
	body.Ints(h.ranks)
	body.Str(h.token)
	w.U32(uint32(body.Len()))
	w.Raw(body.Bytes())
}

func decodeHelloBody(body []byte) (hello, error) {
	r := wire.NewReader(body)
	if k := r.U8(); k != kindHello {
		return hello{}, fmt.Errorf("nettrans: frame kind %d, want hello", k)
	}
	if m := r.U32(); m != helloMagic {
		return hello{}, fmt.Errorf("nettrans: bad magic %#x", m)
	}
	h := hello{
		version: r.U32(),
		procID:  int(int32(r.U32())),
		ranks:   r.Ints(),
		token:   r.Str(),
	}
	if err := r.Err(); err != nil {
		return hello{}, err
	}
	if r.Remaining() != 0 {
		return hello{}, fmt.Errorf("nettrans: %d trailing bytes in hello", r.Remaining())
	}
	return h, nil
}

// welcome is the handshake reply. A refusal carries a reason and, for
// version mismatches, the acceptor's version so the dialer can produce a
// precise error.
type welcome struct {
	ok      bool
	version uint32
	reason  string
}

func appendWelcome(w *wire.Writer, wl welcome) {
	body := wire.NewWriter(32)
	body.U8(kindWelcome)
	if wl.ok {
		body.U8(1)
	} else {
		body.U8(0)
	}
	body.U32(wl.version)
	body.Str(wl.reason)
	w.U32(uint32(body.Len()))
	w.Raw(body.Bytes())
}

func decodeWelcomeBody(body []byte) (welcome, error) {
	r := wire.NewReader(body)
	if k := r.U8(); k != kindWelcome {
		return welcome{}, fmt.Errorf("nettrans: frame kind %d, want welcome", k)
	}
	wl := welcome{
		ok:      r.U8() != 0,
		version: r.U32(),
		reason:  r.Str(),
	}
	if err := r.Err(); err != nil {
		return welcome{}, err
	}
	return wl, nil
}

// readFrame reads one length-prefixed frame body from r. The length is
// validated against maxFrame before any body allocation, so an adversarial
// or corrupt prefix cannot cause an allocation blowup.
func readFrame(r io.Reader, scratch *[lenPrefixSize]byte, maxFrame int) ([]byte, error) {
	if _, err := io.ReadFull(r, scratch[:]); err != nil {
		return nil, err
	}
	n := int(uint32(scratch[0]) | uint32(scratch[1])<<8 | uint32(scratch[2])<<16 | uint32(scratch[3])<<24)
	if n <= 0 {
		return nil, fmt.Errorf("nettrans: invalid frame length %d", n)
	}
	if n > maxFrame {
		return nil, fmt.Errorf("nettrans: frame length %d exceeds limit %d", n, maxFrame)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return body, nil
}
