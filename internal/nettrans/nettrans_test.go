package nettrans

import (
	"errors"
	"net"
	"testing"
	"time"

	"dynacc/internal/minimpi"
	"dynacc/internal/netmodel"
	"dynacc/internal/sim"
)

// node is one test process: its own simulation, World and Transport,
// driven by RunRealtime on a background goroutine.
type node struct {
	t    *testing.T
	s    *sim.Simulation
	w    *minimpi.World
	tr   *Transport
	stop chan struct{}
	done chan error
}

// listeners binds n loopback listeners and returns them with the matching
// topology, assigning one rank per proc unless ranksOf is given.
func listeners(t *testing.T, n int, ranksOf func(i int) []int) ([]net.Listener, []ProcSpec) {
	t.Helper()
	lns := make([]net.Listener, n)
	procs := make([]ProcSpec, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		ranks := []int{i}
		if ranksOf != nil {
			ranks = ranksOf(i)
		}
		procs[i] = ProcSpec{Addr: ln.Addr().String(), Ranks: ranks}
	}
	return lns, procs
}

// startNode builds one process of the topology and starts its realtime
// loop. worldSize is the total rank count across all procs.
func startNode(t *testing.T, worldSize, procID int, procs []ProcSpec, ln net.Listener, mod func(*Config)) *node {
	t.Helper()
	s := sim.New()
	w, err := minimpi.NewWorld(s, worldSize, netmodel.QDRInfiniBand())
	if err != nil {
		t.Fatalf("NewWorld: %v", err)
	}
	cfg := Config{
		World:       w,
		ProcID:      procID,
		Procs:       procs,
		Listener:    ln,
		Token:       "test-token",
		DialBackoff: 5 * time.Millisecond,
	}
	if mod != nil {
		mod(&cfg)
	}
	tr, err := New(cfg)
	if err != nil {
		t.Fatalf("nettrans.New(proc %d): %v", procID, err)
	}
	w.SetTransport(tr)
	n := &node{t: t, s: s, w: w, tr: tr, stop: make(chan struct{}), done: make(chan error, 1)}
	go func() { n.done <- s.RunRealtime(n.stop) }()
	return n
}

// halt stops the realtime loop and closes the transport.
func (n *node) halt() {
	select {
	case <-n.stop:
	default:
		close(n.stop)
	}
	if err := <-n.done; err != nil {
		n.t.Errorf("RunRealtime: %v", err)
	}
	n.tr.Close()
}

// run spawns fn as a process on the node and returns a channel that yields
// once fn finishes.
func (n *node) run(name string, fn func(p *sim.Proc)) chan struct{} {
	ch := make(chan struct{})
	n.s.Inject(func() {
		n.s.Spawn(name, func(p *sim.Proc) {
			defer close(ch)
			fn(p)
		})
	})
	return ch
}

func wait(t *testing.T, ch chan struct{}, what string) {
	t.Helper()
	select {
	case <-ch:
	case <-time.After(10 * time.Second):
		t.Fatalf("timed out waiting for %s", what)
	}
}

// TestPingPongAcrossProcesses sends a tagged payload from rank 0 (proc 0)
// to rank 1 (proc 1) and back, across real loopback sockets.
func TestPingPongAcrossProcesses(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	a := startNode(t, 2, 0, procs, lns[0], nil)
	b := startNode(t, 2, 1, procs, lns[1], nil)
	defer a.halt()
	defer b.halt()

	bDone := b.run("pong", func(p *sim.Proc) {
		c := b.w.Comm(1)
		data, st := c.Recv(p, 0, 7)
		if string(data) != "ping" || st.Source != 0 || st.Tag != 7 || st.Size != 4 {
			t.Errorf("pong got %q status %+v", data, st)
		}
		c.Send(p, 0, 8, []byte("pong"))
	})
	aDone := a.run("ping", func(p *sim.Proc) {
		c := a.w.Comm(0)
		c.Send(p, 1, 7, []byte("ping"))
		data, st := c.Recv(p, 1, 8)
		if string(data) != "pong" || st.Source != 1 || st.Tag != 8 {
			t.Errorf("ping got %q status %+v", data, st)
		}
	})
	wait(t, aDone, "ping side")
	wait(t, bDone, "pong side")

	st := a.tr.Stats()
	if st.FramesSent == 0 || st.FramesReceived == 0 {
		t.Errorf("proc 0 stats show no traffic: %+v", st)
	}
	if st.HandshakeFailures != 0 {
		t.Errorf("unexpected handshake failures: %+v", st)
	}
}

// TestSizedAndLocalDelivery checks that metadata-only (sized) sends cross
// the wire as empty-payload frames, and that same-process ranks still use
// the in-sim path (no frames).
func TestSizedAndLocalDelivery(t *testing.T) {
	// One proc hosts ranks 0 and 1; the other hosts rank 2.
	lns, procs := listeners(t, 2, func(i int) []int {
		if i == 0 {
			return []int{0, 1}
		}
		return []int{2}
	})
	a := startNode(t, 3, 0, procs, lns[0], nil)
	b := startNode(t, 3, 1, procs, lns[1], nil)
	defer a.halt()
	defer b.halt()

	bDone := b.run("recv-sized", func(p *sim.Proc) {
		c := b.w.Comm(2)
		data, st := c.Recv(p, 0, 3)
		if data != nil || st.Size != 1<<20 {
			t.Errorf("sized recv got %d bytes payload, status %+v", len(data), st)
		}
	})
	aDone := a.run("local-and-remote", func(p *sim.Proc) {
		c0 := a.w.Comm(0)
		// Local hop, rank 0 -> rank 1 inside proc 0: pure sim path.
		r := c0.Isend(1, 5, []byte("local"))
		c1 := a.w.Comm(1)
		data, _ := c1.Recv(p, 0, 5)
		if string(data) != "local" {
			t.Errorf("local recv got %q", data)
		}
		r.Wait(p)
		// Remote sized send, rank 0 -> rank 2.
		c0.SendSized(p, 2, 3, 1<<20)
	})
	wait(t, aDone, "sender")
	wait(t, bDone, "sized receiver")

	st := a.tr.Stats()
	if st.FramesSent != 1 {
		t.Errorf("want exactly 1 frame (local hop must not hit the wire), got %+v", st)
	}
	if st.BytesSent >= 1<<20 {
		t.Errorf("sized send shipped its padding: %+v", st)
	}
}

// TestCollectivesAcrossProcesses runs a barrier, broadcast and allreduce
// over four single-rank processes — negative collective tags must survive
// the frame codec.
func TestCollectivesAcrossProcesses(t *testing.T) {
	const n = 4
	lns, procs := listeners(t, n, nil)
	nodes := make([]*node, n)
	for i := range nodes {
		nodes[i] = startNode(t, n, i, procs, lns[i], nil)
		defer nodes[i].halt()
	}
	chans := make([]chan struct{}, n)
	for i := range nodes {
		i := i
		nd := nodes[i]
		chans[i] = nd.run("coll", func(p *sim.Proc) {
			c := nd.w.Comm(i)
			c.Barrier(p)
			var buf []byte
			if i == 2 {
				buf = []byte{10}
			}
			data := c.Bcast(p, 2, buf)
			if len(data) != 1 || data[0] != 10 {
				t.Errorf("rank %d Bcast got %v", i, data)
			}
			sum := c.Allreduce(p, minimpi.F64Bytes([]float64{float64(i + 1)}), minimpi.SumF64)
			if got := minimpi.BytesF64(sum)[0]; got != 10 {
				t.Errorf("rank %d Allreduce got %v, want 10", i, got)
			}
		})
	}
	for _, ch := range chans {
		wait(t, ch, "collective rank")
	}
}

// TestReconnectAfterKill kills the accept-side process mid-conversation,
// restarts it on the same address with a fresh World, and checks that a
// message sent during the outage is delivered after the dialer reconnects.
func TestReconnectAfterKill(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	a := startNode(t, 2, 0, procs, lns[0], nil)
	defer a.halt()
	b := startNode(t, 2, 1, procs, lns[1], nil)

	// Round 1: prove the link works.
	bDone := b.run("recv1", func(p *sim.Proc) {
		b.w.Comm(1).Recv(p, 0, 1)
	})
	aDone := a.run("send1", func(p *sim.Proc) {
		a.w.Comm(0).Send(p, 1, 1, []byte("one"))
	})
	wait(t, aDone, "first send")
	wait(t, bDone, "first recv")

	// Kill proc 1: realtime loop stopped, transport (and listener) closed.
	b.halt()

	// Wait for the dialer to observe the broken connection. A frame
	// written into the kernel buffer of a conn that just died can be lost
	// — transport delivery is at-most-once, like the sim path under fault
	// injection; the core client's timeout/retry layer owns that case.
	// Once the outage is visible, sends must queue and survive it.
	pr := a.tr.peers[1]
	for deadline := time.Now().Add(5 * time.Second); ; {
		pr.mu.Lock()
		down := pr.conn == nil
		pr.mu.Unlock()
		if down {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("dialer never noticed the outage")
		}
		time.Sleep(time.Millisecond)
	}

	// Send into the outage: the frame must queue, not vanish.
	aDone = a.run("send2", func(p *sim.Proc) {
		a.w.Comm(0).Send(p, 1, 2, []byte("two"))
	})
	wait(t, aDone, "send during outage (local completion)")

	// Restart proc 1 on the same address with a fresh World.
	ln, err := net.Listen("tcp", procs[1].Addr)
	if err != nil {
		t.Fatalf("rebind %s: %v", procs[1].Addr, err)
	}
	b2 := startNode(t, 2, 1, procs, ln, nil)
	defer b2.halt()

	b2Done := b2.run("recv2", func(p *sim.Proc) {
		data, st := b2.w.Comm(1).Recv(p, 0, 2)
		if string(data) != "two" || st.Tag != 2 {
			t.Errorf("post-restart recv got %q %+v", data, st)
		}
	})
	wait(t, b2Done, "delivery after reconnect")

	st := a.tr.Stats()
	if st.Reconnects < 1 {
		t.Errorf("want at least one reconnect, got %+v", st)
	}
	if st.Dials < 2 {
		t.Errorf("want redials, got %+v", st)
	}
}

// TestHandshakeVersionMismatch checks that mismatched protocol versions
// produce the typed refusal on the dialer and count on both sides.
func TestHandshakeVersionMismatch(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	a := startNode(t, 2, 0, procs, lns[0], func(c *Config) { c.Version = 1 })
	b := startNode(t, 2, 1, procs, lns[1], func(c *Config) { c.Version = 2 })
	defer a.halt()
	defer b.halt()

	err := a.tr.WaitReady(5 * time.Second)
	if err == nil {
		t.Fatal("WaitReady succeeded across a version mismatch")
	}
	if !errors.Is(err, ErrHandshake) {
		t.Errorf("error does not wrap ErrHandshake: %v", err)
	}
	var vm *VersionMismatchError
	if !errors.As(err, &vm) {
		t.Fatalf("error is not a VersionMismatchError: %v", err)
	}
	if vm.Mine != 1 || vm.Theirs != 2 {
		t.Errorf("mismatch detail = %+v, want mine=1 theirs=2", vm)
	}
	if a.tr.Stats().HandshakeFailures == 0 {
		t.Error("dialer did not count the handshake failure")
	}
	if b.tr.Stats().HandshakeFailures == 0 {
		t.Error("acceptor did not count the handshake failure")
	}
}

// TestHandshakeBadToken checks token enforcement.
func TestHandshakeBadToken(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	a := startNode(t, 2, 0, procs, lns[0], func(c *Config) { c.Token = "alpha" })
	b := startNode(t, 2, 1, procs, lns[1], func(c *Config) { c.Token = "beta" })
	defer a.halt()
	defer b.halt()

	err := a.tr.WaitReady(5 * time.Second)
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("want ErrHandshake, got %v", err)
	}
	var he *HandshakeError
	if !errors.As(err, &he) {
		t.Fatalf("error is not a HandshakeError: %v", err)
	}
}

// TestHandshakeRankClaimMismatch checks that a topology disagreement (the
// dialer claims ranks the acceptor's topology does not assign to it) is
// refused.
func TestHandshakeRankClaimMismatch(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	// Proc 0's own topology claims rank 1 as well — proc 1 will refuse.
	badProcs := []ProcSpec{{Addr: procs[0].Addr, Ranks: []int{0, 1}}, {Addr: procs[1].Addr, Ranks: []int{2}}}
	a := startNode(t, 3, 0, badProcs, lns[0], nil)
	goodProcs := []ProcSpec{{Addr: procs[0].Addr, Ranks: []int{0}}, {Addr: procs[1].Addr, Ranks: []int{1, 2}}}
	b := startNode(t, 3, 1, goodProcs, lns[1], nil)
	defer a.halt()
	defer b.halt()

	err := a.tr.WaitReady(5 * time.Second)
	if !errors.Is(err, ErrHandshake) {
		t.Fatalf("want ErrHandshake for rank-claim mismatch, got %v", err)
	}
}

// TestConfigValidation exercises topology validation in New.
func TestConfigValidation(t *testing.T) {
	s := sim.New()
	w, _ := minimpi.NewWorld(s, 2, netmodel.QDRInfiniBand())
	cases := []struct {
		name  string
		procs []ProcSpec
	}{
		{"unassigned rank", []ProcSpec{{Addr: "x", Ranks: []int{0}}, {Addr: "y", Ranks: []int{}}}},
		{"duplicate rank", []ProcSpec{{Addr: "x", Ranks: []int{0, 1}}, {Addr: "y", Ranks: []int{1}}}},
		{"out of range", []ProcSpec{{Addr: "x", Ranks: []int{0}}, {Addr: "y", Ranks: []int{5}}}},
	}
	for _, tc := range cases {
		if _, err := New(Config{World: w, ProcID: 0, Procs: tc.procs}); err == nil {
			t.Errorf("%s: New accepted a bad topology", tc.name)
		}
	}
}

// TestOwnedBufferReturnsToPool checks the IsendOwned contract over the
// socket path: Deliver copies the payload out and the buffer returns to
// the world pool immediately (eager local completion), ready for reuse.
func TestOwnedBufferReturnsToPool(t *testing.T) {
	lns, procs := listeners(t, 2, nil)
	a := startNode(t, 2, 0, procs, lns[0], nil)
	b := startNode(t, 2, 1, procs, lns[1], nil)
	defer a.halt()
	defer b.halt()

	bDone := b.run("recv-owned", func(p *sim.Proc) {
		c := b.w.Comm(1)
		for i := 0; i < 2; i++ {
			req := c.Irecv(0, 9)
			data, _ := req.Wait(p)
			want := byte('A' + i)
			for _, bb := range data {
				if bb != want {
					t.Errorf("owned payload %d corrupted: got %d want %d", i, bb, want)
					break
				}
			}
			req.Free() // no-op on the receive side of a socket hop; must not panic
		}
	})
	aDone := a.run("send-owned", func(p *sim.Proc) {
		c := a.w.Comm(0)
		const n = 4096
		buf1 := a.w.GetBuf(n)
		for i := range buf1 {
			buf1[i] = 'A'
		}
		c.IsendOwned(1, 9, buf1).Wait(p)
		// Deliver returned buf1 to the pool at enqueue time; the next
		// GetBuf of the same size must reuse it.
		buf2 := a.w.GetBuf(n)
		if &buf2[0] != &buf1[0] {
			t.Error("owned send buffer did not return to the pool at Deliver")
		}
		for i := range buf2 {
			buf2[i] = 'B'
		}
		c.IsendOwned(1, 9, buf2).Wait(p)
	})
	wait(t, aDone, "owned sender")
	wait(t, bDone, "owned receiver")
}
