package nettrans

import (
	"bytes"
	"runtime"
	"testing"

	"dynacc/internal/minimpi"
	"dynacc/internal/wire"
)

// FuzzDecodeMsgBody throws arbitrary bytes at the message-frame decoder:
// it must never panic, and an accepted frame must satisfy the envelope
// invariants the reader relies on before injecting into a World.
func FuzzDecodeMsgBody(f *testing.F) {
	// Seed with a valid frame (prefix stripped), a sized-send frame, and
	// mutilations of both.
	w := wire.NewWriter(64)
	appendMsgFrame(w, minimpi.Envelope{Src: 1, SrcComm: 0, Dst: 2, Ctx: 3, Tag: -5, Size: 4}, []byte("abcd"))
	valid := w.Bytes()[lenPrefixSize:]
	f.Add(append([]byte(nil), valid...))
	w.Reset()
	appendMsgFrame(w, minimpi.Envelope{Src: 0, Dst: 1, Tag: 10, Size: 1 << 20}, nil)
	f.Add(append([]byte(nil), w.Bytes()[lenPrefixSize:]...))
	f.Add(valid[:len(valid)-2]) // truncated payload
	f.Add([]byte{kindMsg})      // truncated header
	f.Add([]byte{})
	f.Add([]byte{kindHello, 0xFF, 0xFF})

	f.Fuzz(func(t *testing.T, body []byte) {
		env, payload, err := decodeMsgBody(body)
		if err != nil {
			return
		}
		if env.Size < 0 {
			t.Fatalf("accepted negative size: %+v", env)
		}
		if payload != nil && len(payload) != env.Size {
			t.Fatalf("accepted mismatched payload: %d bytes for size %d", len(payload), env.Size)
		}
	})
}

// FuzzReadFrame exercises the stream framing layer: arbitrary byte streams
// must produce either a body within the limit or an error, never a panic
// or an over-limit buffer.
func FuzzReadFrame(f *testing.F) {
	w := wire.NewWriter(64)
	appendMsgFrame(w, minimpi.Envelope{Src: 0, Dst: 1, Tag: 1, Size: 3}, []byte("xyz"))
	f.Add(append([]byte(nil), w.Bytes()...))
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3}) // absurd length prefix
	f.Add([]byte{0, 0, 0, 0})                      // zero length
	f.Add([]byte{10, 0, 0, 0, 1, 2})               // truncated body

	f.Fuzz(func(t *testing.T, data []byte) {
		const limit = 1 << 16
		var scratch [lenPrefixSize]byte
		body, err := readFrame(bytes.NewReader(data), &scratch, limit)
		if err == nil && len(body) > limit {
			t.Fatalf("readFrame returned %d bytes past the %d limit", len(body), limit)
		}
	})
}

// FuzzDecodeHandshake covers the hello/welcome decoders.
func FuzzDecodeHandshake(f *testing.F) {
	w := wire.NewWriter(64)
	appendHello(w, hello{version: 1, procID: 2, ranks: []int{3, 4}, token: "tok"})
	f.Add(append([]byte(nil), w.Bytes()[lenPrefixSize:]...))
	w.Reset()
	appendWelcome(w, welcome{ok: false, version: 9, reason: "nope"})
	f.Add(append([]byte(nil), w.Bytes()[lenPrefixSize:]...))

	f.Fuzz(func(t *testing.T, body []byte) {
		if h, err := decodeHelloBody(body); err == nil {
			rt := wire.NewWriter(64)
			appendHello(rt, h)
			if h2, err2 := decodeHelloBody(rt.Bytes()[lenPrefixSize:]); err2 != nil || h2.token != h.token || h2.procID != h.procID {
				t.Fatalf("hello round-trip broke: %+v -> %+v (%v)", h, h2, err2)
			}
		}
		decodeWelcomeBody(body)
	})
}

// TestReadFrameOversizedRejectsWithoutAllocating pins the frame-length
// guard: a corrupt prefix claiming a near-2GiB body must be refused before
// the body buffer is allocated. Measured in bytes, not alloc counts — the
// error value itself may allocate a few dozen bytes.
func TestReadFrameOversizedRejectsWithoutAllocating(t *testing.T) {
	evil := []byte{0xF0, 0xFF, 0xFF, 0x7F} // claims ~2GiB, no body follows
	var scratch [lenPrefixSize]byte
	r := bytes.NewReader(nil)

	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)
	for i := 0; i < 100; i++ {
		r.Reset(evil)
		if _, err := readFrame(r, &scratch, DefaultMaxFrame); err == nil {
			t.Fatal("oversized frame accepted")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 1<<20 {
		t.Fatalf("100 oversized rejections allocated %d bytes", grew)
	}
}
