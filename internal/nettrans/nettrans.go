// Package nettrans is the TCP backend of the minimpi Transport interface:
// it carries messages between the ranks of one minimpi World when those
// ranks are spread over several OS processes.
//
// Deployment model. A topology assigns every world rank to exactly one
// process. Each process runs its own simulation driven by sim.RunRealtime
// (virtual clock slaved to the wall clock) and owns one Transport bound to
// one listener. Messages between ranks of the same process take the
// unchanged in-sim path — the deterministic interconnect model stays the
// oracle — while messages to remote ranks are framed and written to a
// per-process-pair TCP connection. A goroutine-per-connection reader
// decodes arriving frames and injects them into the destination World,
// where they land in the same matching queues (posted receives, unexpected
// envelopes, probers) a local send would.
//
// Connections. Process i dials process j exactly when i < j, so each pair
// shares a single full-duplex connection carrying all of its rank traffic
// in both directions; per-pair FIFO order on the wire preserves minimpi's
// non-overtaking guarantee. The dialer owns reconnection: on connection
// loss it redials with exponential backoff while outbound frames queue in
// an unbounded outbox (the scheduler must never block on a slow peer), and
// the frame a broken connection failed to carry is resent on the next one.
// A handshake (protocol version, shared token, proc id + rank claim)
// guards every connection; refusals produce typed errors wrapping
// ErrHandshake.
//
// Timeouts need no special handling: they are simulation timer events, and
// under RunRealtime those fire at wall-clock deadlines.
package nettrans

import (
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"dynacc/internal/minimpi"
	"dynacc/internal/wire"
)

// ProcSpec describes one process of the topology: where it listens and
// which world ranks it hosts.
type ProcSpec struct {
	Addr  string
	Ranks []int
}

// Config describes one process's attachment to the topology.
type Config struct {
	// World is the local World; messages for remote ranks leave it through
	// this transport, arriving frames are injected into it.
	World *minimpi.World
	// ProcID indexes Procs: which process this is.
	ProcID int
	// Procs is the shared topology. The rank sets must partition
	// [0, World.Size()) and be identical in every process.
	Procs []ProcSpec
	// Token authenticates connections; both sides must present the same
	// value. Empty means unauthenticated.
	Token string
	// Listener optionally provides a pre-bound listener (e.g. on :0 with
	// the resolved address already published in Procs). When nil, the
	// transport listens on Procs[ProcID].Addr.
	Listener net.Listener
	// MaxFrame bounds one frame body; DefaultMaxFrame when zero.
	MaxFrame int
	// Version overrides the announced protocol version (tests only);
	// ProtocolVersion when zero.
	Version uint32

	// DialTimeout is the per-attempt connect timeout (default 2s).
	// DialBackoff/DialBackoffMax shape the reconnect schedule (default
	// 50ms doubling to 2s).
	DialTimeout      time.Duration
	DialBackoff      time.Duration
	DialBackoffMax   time.Duration
	HandshakeTimeout time.Duration // default 5s
}

// Transport is a minimpi.Transport carrying remote-rank messages over TCP.
// Create with New, install with World.SetTransport, and drive the world
// with sim.RunRealtime — injection needs a running real-time loop.
type Transport struct {
	cfg      Config
	world    *minimpi.World
	local    minimpi.Transport // in-sim backend for local-destination traffic
	version  uint32
	maxFrame int
	rankProc []int // world rank -> proc id
	peers    []*peer
	ln       net.Listener

	encw      wire.Writer // Deliver-side scratch encoder (scheduler context only)
	framePool sync.Pool

	closed   atomic.Bool
	closedCh chan struct{}
	wg       sync.WaitGroup

	stats struct {
		dials, reconnects, handshakeFailures    atomic.Int64
		framesSent, framesReceived, framesResent atomic.Int64
		bytesSent, bytesReceived                 atomic.Int64
	}
}

// peer is the connection state toward one remote process.
type peer struct {
	t      *Transport
	id     int
	addr   string
	dialer bool // we dial them (our proc id is lower)

	mu      sync.Mutex
	cond    *sync.Cond
	queue   [][]byte // encoded frames awaiting write; queue[head] is next
	head    int
	conn    net.Conn
	connGen int

	ready   bool // first handshake completed
	readyCh chan struct{}
	failCh  chan struct{}
	permErr error // permanent handshake refusal; set once, then failCh closes
}

// New validates the topology, binds the listener and starts the
// per-peer connection machinery. It does not block waiting for peers; use
// WaitReady for that.
func New(cfg Config) (*Transport, error) {
	if cfg.World == nil {
		return nil, fmt.Errorf("nettrans: nil World")
	}
	if cfg.ProcID < 0 || cfg.ProcID >= len(cfg.Procs) {
		return nil, fmt.Errorf("nettrans: proc id %d out of range [0,%d)", cfg.ProcID, len(cfg.Procs))
	}
	n := cfg.World.Size()
	rankProc := make([]int, n)
	for i := range rankProc {
		rankProc[i] = -1
	}
	for pid, ps := range cfg.Procs {
		for _, r := range ps.Ranks {
			if r < 0 || r >= n {
				return nil, fmt.Errorf("nettrans: proc %d claims rank %d outside world [0,%d)", pid, r, n)
			}
			if rankProc[r] != -1 {
				return nil, fmt.Errorf("nettrans: rank %d assigned to procs %d and %d", r, rankProc[r], pid)
			}
			rankProc[r] = pid
		}
	}
	for r, pid := range rankProc {
		if pid == -1 {
			return nil, fmt.Errorf("nettrans: rank %d not assigned to any proc", r)
		}
	}
	if cfg.DialTimeout == 0 {
		cfg.DialTimeout = 2 * time.Second
	}
	if cfg.DialBackoff == 0 {
		cfg.DialBackoff = 50 * time.Millisecond
	}
	if cfg.DialBackoffMax == 0 {
		cfg.DialBackoffMax = 2 * time.Second
	}
	if cfg.HandshakeTimeout == 0 {
		cfg.HandshakeTimeout = 5 * time.Second
	}
	t := &Transport{
		cfg:      cfg,
		world:    cfg.World,
		local:    cfg.World.SimTransport(),
		version:  cfg.Version,
		maxFrame: cfg.MaxFrame,
		rankProc: rankProc,
		closedCh: make(chan struct{}),
	}
	if t.version == 0 {
		t.version = ProtocolVersion
	}
	if t.maxFrame == 0 {
		t.maxFrame = DefaultMaxFrame
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", cfg.Procs[cfg.ProcID].Addr)
		if err != nil {
			return nil, fmt.Errorf("nettrans: listen: %w", err)
		}
	}
	t.ln = ln
	t.peers = make([]*peer, len(cfg.Procs))
	for pid, ps := range cfg.Procs {
		if pid == cfg.ProcID {
			continue
		}
		pr := &peer{
			t:       t,
			id:      pid,
			addr:    ps.Addr,
			dialer:  cfg.ProcID < pid,
			readyCh: make(chan struct{}),
			failCh:  make(chan struct{}),
		}
		pr.cond = sync.NewCond(&pr.mu)
		t.peers[pid] = pr
		t.wg.Add(1)
		go pr.writeLoop()
		if pr.dialer {
			t.wg.Add(1)
			go pr.dialLoop()
		}
	}
	t.wg.Add(1)
	go t.acceptLoop()
	return t, nil
}

// Addr returns the listener's actual address (useful with ":0").
func (t *Transport) Addr() net.Addr { return t.ln.Addr() }

// Deliver implements minimpi.Transport. Local-destination messages take
// the in-sim path unchanged; remote ones are encoded into a pooled frame
// buffer (copy-on-enqueue — the payload may belong to a scratch encoder or
// the world pool, and must not be aliased past this call), complete
// locally, and queue toward the destination process.
func (t *Transport) Deliver(m *minimpi.Message) {
	dst := m.Dst()
	pid := t.rankProc[dst]
	if pid == t.cfg.ProcID {
		t.local.Deliver(m)
		return
	}
	t.encw.Reset()
	appendMsgFrame(&t.encw, m.RemoteEnvelope(), m.Payload())
	frame := t.getFrame(t.encw.Len())
	copy(frame, t.encw.Bytes())
	m.FinishLocal()
	t.peers[pid].enqueue(frame)
}

// Stats implements minimpi.Transport.
func (t *Transport) Stats() minimpi.TransportStats {
	return minimpi.TransportStats{
		Dials:             t.stats.dials.Load(),
		Reconnects:        t.stats.reconnects.Load(),
		HandshakeFailures: t.stats.handshakeFailures.Load(),
		FramesSent:        t.stats.framesSent.Load(),
		FramesReceived:    t.stats.framesReceived.Load(),
		FramesResent:      t.stats.framesResent.Load(),
		BytesSent:         t.stats.bytesSent.Load(),
		BytesReceived:     t.stats.bytesReceived.Load(),
	}
}

// WaitReady blocks until every peer this process dials has completed its
// first handshake, or returns the first permanent refusal (bad token,
// version mismatch) or a timeout error. Accept-side peers are not waited
// for: they connect whenever the remote process starts.
func (t *Transport) WaitReady(timeout time.Duration) error {
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for _, pr := range t.peers {
		if pr == nil || !pr.dialer {
			continue
		}
		select {
		case <-pr.readyCh:
		case <-pr.failCh:
			return pr.permErr
		case <-t.closedCh:
			return ErrClosed
		case <-deadline.C:
			return fmt.Errorf("nettrans: timed out waiting for peer %d (%s)", pr.id, pr.addr)
		}
	}
	return nil
}

// Flush waits until every outbox has drained (all queued frames written to
// a live connection) or the timeout elapses, reporting whether it drained.
// Call before Close when in-flight responses must reach their peers.
func (t *Transport) Flush(timeout time.Duration) bool {
	deadline := time.Now().Add(timeout)
	for {
		empty := true
		for _, pr := range t.peers {
			if pr != nil && pr.queued() > 0 {
				empty = false
				break
			}
		}
		if empty {
			return true
		}
		if time.Now().After(deadline) {
			return false
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// Close implements minimpi.Transport: stops all connection machinery and
// waits for its goroutines. Queued frames that never reached a connection
// are dropped, like any network would on process exit; use Flush first for
// a graceful drain.
func (t *Transport) Close() error {
	if t.closed.Swap(true) {
		return nil
	}
	close(t.closedCh)
	t.ln.Close()
	for _, pr := range t.peers {
		if pr == nil {
			continue
		}
		pr.mu.Lock()
		if pr.conn != nil {
			pr.conn.Close()
			pr.conn = nil
		}
		pr.cond.Broadcast()
		pr.mu.Unlock()
	}
	t.wg.Wait()
	return nil
}

// getFrame returns a buffer of length n from the frame pool.
func (t *Transport) getFrame(n int) []byte {
	if v := t.framePool.Get(); v != nil {
		b := v.([]byte)
		if cap(b) >= n {
			return b[:n]
		}
	}
	return make([]byte, n)
}

func (t *Transport) putFrame(b []byte) { t.framePool.Put(b[:0]) } //nolint:staticcheck // slice header boxing is fine here

// enqueue appends a frame to the peer's outbox. Never blocks: the outbox
// is unbounded so the simulation scheduler cannot be wedged by a slow or
// dead peer.
func (pr *peer) enqueue(frame []byte) {
	pr.mu.Lock()
	if pr.t.closed.Load() {
		pr.mu.Unlock()
		return
	}
	pr.queue = append(pr.queue, frame)
	pr.cond.Signal()
	pr.mu.Unlock()
}

func (pr *peer) queued() int {
	pr.mu.Lock()
	defer pr.mu.Unlock()
	return len(pr.queue) - pr.head
}

// writeLoop writes queued frames to the current connection. A failed write
// drops the connection and leaves the frame at the head of the queue; it
// is resent on the next connection (counted in FramesResent).
func (pr *peer) writeLoop() {
	defer pr.t.wg.Done()
	for {
		pr.mu.Lock()
		for !pr.t.closed.Load() && (pr.head >= len(pr.queue) || pr.conn == nil) {
			pr.cond.Wait()
		}
		if pr.t.closed.Load() {
			pr.mu.Unlock()
			return
		}
		frame := pr.queue[pr.head]
		conn, gen := pr.conn, pr.connGen
		pr.mu.Unlock()

		_, err := conn.Write(frame)

		pr.mu.Lock()
		if err != nil {
			if pr.connGen == gen && pr.conn != nil {
				pr.conn.Close()
				pr.conn = nil
			}
			pr.t.stats.framesResent.Add(1)
			pr.mu.Unlock()
			continue
		}
		pr.queue[pr.head] = nil
		pr.head++
		if pr.head == len(pr.queue) {
			pr.queue = pr.queue[:0]
			pr.head = 0
		}
		pr.mu.Unlock()
		pr.t.stats.framesSent.Add(1)
		pr.t.stats.bytesSent.Add(int64(len(frame)))
		pr.t.putFrame(frame)
	}
}

// setConn installs a fresh, handshaken connection, replacing (and closing)
// any previous one.
func (pr *peer) setConn(conn net.Conn) {
	pr.mu.Lock()
	if pr.conn != nil {
		pr.conn.Close()
	}
	pr.conn = conn
	pr.connGen++
	if pr.ready {
		pr.t.stats.reconnects.Add(1)
	} else {
		pr.ready = true
		close(pr.readyCh)
	}
	pr.cond.Broadcast()
	pr.mu.Unlock()
}

// dropConn clears the peer's current connection if it is still conn.
func (pr *peer) dropConn(conn net.Conn) {
	pr.mu.Lock()
	if pr.conn == conn {
		pr.conn = nil
	}
	pr.mu.Unlock()
}

func (pr *peer) setPermErr(err error) {
	pr.mu.Lock()
	if pr.permErr == nil {
		pr.permErr = err
		close(pr.failCh)
	}
	pr.mu.Unlock()
}

// dialLoop owns the connection toward a higher-numbered process: dial,
// handshake, then serve reads until the connection dies, then redial with
// exponential backoff. A permanent refusal (bad token, version mismatch)
// stops the loop — retrying cannot help.
func (pr *peer) dialLoop() {
	defer pr.t.wg.Done()
	t := pr.t
	backoff := t.cfg.DialBackoff
	for {
		if t.closed.Load() {
			return
		}
		conn, err := net.DialTimeout("tcp", pr.addr, t.cfg.DialTimeout)
		t.stats.dials.Add(1)
		if err == nil {
			herr := t.handshakeOut(conn)
			if herr == nil {
				backoff = t.cfg.DialBackoff
				pr.setConn(conn)
				t.readLoop(conn, pr) // returns when the connection dies
				continue
			}
			conn.Close()
			t.stats.handshakeFailures.Add(1)
			switch herr.(type) {
			case *VersionMismatchError, *HandshakeError:
				pr.setPermErr(herr)
				return
			}
		}
		timer := time.NewTimer(backoff)
		select {
		case <-t.closedCh:
			timer.Stop()
			return
		case <-timer.C:
		}
		backoff *= 2
		if backoff > t.cfg.DialBackoffMax {
			backoff = t.cfg.DialBackoffMax
		}
	}
}

// handshakeOut runs the dialer's half: send hello, await welcome.
func (t *Transport) handshakeOut(conn net.Conn) error {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	w := wire.NewWriter(64)
	appendHello(w, hello{
		version: t.version,
		procID:  t.cfg.ProcID,
		ranks:   t.cfg.Procs[t.cfg.ProcID].Ranks,
		token:   t.cfg.Token,
	})
	if _, err := conn.Write(w.Bytes()); err != nil {
		return err
	}
	var scratch [lenPrefixSize]byte
	body, err := readFrame(conn, &scratch, maxHandshakeFrame)
	if err != nil {
		return err
	}
	wl, err := decodeWelcomeBody(body)
	if err != nil {
		return err
	}
	if !wl.ok {
		if wl.version != t.version {
			return &VersionMismatchError{Mine: t.version, Theirs: wl.version}
		}
		return &HandshakeError{Peer: conn.RemoteAddr().String(), Reason: wl.reason}
	}
	return nil
}

// acceptLoop admits inbound connections: each runs the accept-side
// handshake and, if it checks out, becomes the claimed peer's connection.
func (t *Transport) acceptLoop() {
	defer t.wg.Done()
	for {
		conn, err := t.ln.Accept()
		if err != nil {
			if t.closed.Load() {
				return
			}
			time.Sleep(10 * time.Millisecond)
			continue
		}
		t.wg.Add(1)
		go func() {
			defer t.wg.Done()
			pr, err := t.handshakeIn(conn)
			if err != nil {
				t.stats.handshakeFailures.Add(1)
				conn.Close()
				return
			}
			pr.setConn(conn)
			t.readLoop(conn, pr)
		}()
	}
}

// handshakeIn runs the accept side: read the hello, verify the version,
// token and rank claim against the shared topology, and reply.
func (t *Transport) handshakeIn(conn net.Conn) (*peer, error) {
	conn.SetDeadline(time.Now().Add(t.cfg.HandshakeTimeout))
	defer conn.SetDeadline(time.Time{})
	var scratch [lenPrefixSize]byte
	body, err := readFrame(conn, &scratch, maxHandshakeFrame)
	if err != nil {
		return nil, err
	}
	h, err := decodeHelloBody(body)
	if err != nil {
		return nil, t.refuse(conn, err.Error())
	}
	if h.version != t.version {
		w := wire.NewWriter(32)
		appendWelcome(w, welcome{ok: false, version: t.version, reason: "protocol version mismatch"})
		conn.Write(w.Bytes())
		return nil, &VersionMismatchError{Mine: t.version, Theirs: h.version}
	}
	if h.token != t.cfg.Token {
		return nil, t.refuse(conn, "bad connection token")
	}
	if h.procID < 0 || h.procID >= len(t.cfg.Procs) || h.procID == t.cfg.ProcID {
		return nil, t.refuse(conn, fmt.Sprintf("bogus proc id %d", h.procID))
	}
	want := t.cfg.Procs[h.procID].Ranks
	if !equalRanks(h.ranks, want) {
		return nil, t.refuse(conn, fmt.Sprintf("rank claim %v does not match topology %v for proc %d", h.ranks, want, h.procID))
	}
	w := wire.NewWriter(32)
	appendWelcome(w, welcome{ok: true, version: t.version})
	if _, err := conn.Write(w.Bytes()); err != nil {
		return nil, err
	}
	return t.peers[h.procID], nil
}

// refuse sends a negative welcome and returns the matching typed error.
func (t *Transport) refuse(conn net.Conn, reason string) error {
	w := wire.NewWriter(64)
	appendWelcome(w, welcome{ok: false, version: t.version, reason: reason})
	conn.Write(w.Bytes())
	return &HandshakeError{Peer: conn.RemoteAddr().String(), Reason: reason}
}

func equalRanks(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// readLoop decodes message frames off one connection and injects them into
// the local World until the connection dies. Each frame gets a fresh
// buffer: the World takes ownership of the payload, and the World's own
// buffer pool is not goroutine-safe, so readers never touch it.
func (t *Transport) readLoop(conn net.Conn, pr *peer) {
	var scratch [lenPrefixSize]byte
	for {
		body, err := readFrame(conn, &scratch, t.maxFrame)
		if err != nil {
			break
		}
		env, payload, err := decodeMsgBody(body)
		if err != nil {
			break
		}
		t.stats.framesReceived.Add(1)
		t.stats.bytesReceived.Add(int64(lenPrefixSize + len(body)))
		if err := t.world.InjectRemote(env, payload); err != nil {
			break
		}
	}
	conn.Close()
	pr.dropConn(conn)
}
