package nettrans

import (
	"errors"
	"fmt"
)

// ErrHandshake is the class of all connection-handshake refusals: bad
// token, bad magic, inconsistent rank claim, version mismatch. Concrete
// errors wrap it, so errors.Is(err, ErrHandshake) catches them all.
var ErrHandshake = errors.New("nettrans: handshake failed")

// ErrClosed is returned by operations on a closed transport.
var ErrClosed = errors.New("nettrans: transport closed")

// VersionMismatchError is a handshake refusal caused by incompatible
// protocol revisions. It wraps ErrHandshake.
type VersionMismatchError struct {
	Mine   uint32 // the local protocol version
	Theirs uint32 // the version the peer announced
}

func (e *VersionMismatchError) Error() string {
	return fmt.Sprintf("nettrans: protocol version mismatch: local %d, peer %d", e.Mine, e.Theirs)
}

func (e *VersionMismatchError) Unwrap() error { return ErrHandshake }

// HandshakeError is a handshake refusal with a reason (bad token, bogus
// rank claim, malformed hello). It wraps ErrHandshake.
type HandshakeError struct {
	Peer   string // remote address or proc label
	Reason string
}

func (e *HandshakeError) Error() string {
	return fmt.Sprintf("nettrans: handshake with %s refused: %s", e.Peer, e.Reason)
}

func (e *HandshakeError) Unwrap() error { return ErrHandshake }
