package wire

import (
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.U8(7).U32(1 << 30).U64(1 << 60).I64(-42).Int(-9).F64(3.25).Str("hello").Blob([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -9 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Blob(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Blob = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncatedStickyError(t *testing.T) {
	w := NewWriter(0)
	w.U32(5)
	r := NewReader(w.Bytes())
	r.U64() // too short
	if r.Err() == nil {
		t.Fatal("no error on truncated read")
	}
	// Sticky: everything after returns zero values, error preserved.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("post-error Str = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("error cleared")
	}
}

func TestEmptyStringAndBlob(t *testing.T) {
	w := NewWriter(0)
	w.Str("").Blob(nil)
	r := NewReader(w.Bytes())
	if got := r.Str(); got != "" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Errorf("Blob = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, d int64, e float64, s string, blob []byte) bool {
		w := NewWriter(0)
		w.U8(a).U32(b).U64(c).I64(d).F64(e).Str(s).Blob(blob)
		r := NewReader(w.Bytes())
		if r.U8() != a || r.U32() != b || r.U64() != c || r.I64() != d {
			return false
		}
		got := r.F64()
		if got != e && !(got != got && e != e) { // NaN-safe compare
			return false
		}
		if r.Str() != s {
			return false
		}
		gb := r.Blob()
		if len(gb) != len(blob) {
			return false
		}
		for i := range gb {
			if gb[i] != blob[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
