package wire

import (
	"bytes"
	"testing"
	"testing/quick"
)

func TestRoundTripAllTypes(t *testing.T) {
	w := NewWriter(64)
	w.U8(7).U32(1 << 30).U64(1 << 60).I64(-42).Int(-9).F64(3.25).Str("hello").Blob([]byte{1, 2, 3})
	r := NewReader(w.Bytes())
	if got := r.U8(); got != 7 {
		t.Errorf("U8 = %d", got)
	}
	if got := r.U32(); got != 1<<30 {
		t.Errorf("U32 = %d", got)
	}
	if got := r.U64(); got != 1<<60 {
		t.Errorf("U64 = %d", got)
	}
	if got := r.I64(); got != -42 {
		t.Errorf("I64 = %d", got)
	}
	if got := r.Int(); got != -9 {
		t.Errorf("Int = %d", got)
	}
	if got := r.F64(); got != 3.25 {
		t.Errorf("F64 = %g", got)
	}
	if got := r.Str(); got != "hello" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Blob(); len(got) != 3 || got[0] != 1 {
		t.Errorf("Blob = %v", got)
	}
	if r.Err() != nil {
		t.Fatalf("unexpected error: %v", r.Err())
	}
	if r.Remaining() != 0 {
		t.Fatalf("remaining = %d", r.Remaining())
	}
}

func TestTruncatedStickyError(t *testing.T) {
	w := NewWriter(0)
	w.U32(5)
	r := NewReader(w.Bytes())
	r.U64() // too short
	if r.Err() == nil {
		t.Fatal("no error on truncated read")
	}
	// Sticky: everything after returns zero values, error preserved.
	if got := r.U32(); got != 0 {
		t.Errorf("post-error U32 = %d", got)
	}
	if got := r.Str(); got != "" {
		t.Errorf("post-error Str = %q", got)
	}
	if r.Err() == nil {
		t.Fatal("error cleared")
	}
}

func TestEmptyStringAndBlob(t *testing.T) {
	w := NewWriter(0)
	w.Str("").Blob(nil)
	r := NewReader(w.Bytes())
	if got := r.Str(); got != "" {
		t.Errorf("Str = %q", got)
	}
	if got := r.Blob(); len(got) != 0 {
		t.Errorf("Blob = %v", got)
	}
	if r.Err() != nil {
		t.Fatal(r.Err())
	}
}

func TestPropertyRoundTrip(t *testing.T) {
	f := func(a uint8, b uint32, c uint64, d int64, e float64, s string, blob []byte) bool {
		w := NewWriter(0)
		w.U8(a).U32(b).U64(c).I64(d).F64(e).Str(s).Blob(blob)
		r := NewReader(w.Bytes())
		if r.U8() != a || r.U32() != b || r.U64() != c || r.I64() != d {
			return false
		}
		got := r.F64()
		if got != e && !(got != got && e != e) { // NaN-safe compare
			return false
		}
		if r.Str() != s {
			return false
		}
		gb := r.Blob()
		if len(gb) != len(blob) {
			return false
		}
		for i := range gb {
			if gb[i] != blob[i] {
				return false
			}
		}
		return r.Err() == nil && r.Remaining() == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestWriterResetReuse pins the scratch-writer contract the protocol
// layer relies on: a Reset writer re-encoding the same fields produces
// bytes identical to a fresh writer's, and CopyBytes snapshots are
// independent of later writes to the writer.
func TestWriterResetReuse(t *testing.T) {
	encode := func(w *Writer) []byte {
		w.U8(3).U32(0xdeadbeef).U64(1<<40 + 7).I64(-42).Int(123456).
			F64(3.14159).Str("reuse").Blob([]byte{9, 8, 7})
		return w.CopyBytes()
	}
	fresh := encode(NewWriter(0))

	w := NewWriter(8)
	// Dirty the writer with unrelated content, then Reset and re-encode
	// several times: every round must be byte-identical to the fresh
	// encoding and to each other.
	w.Str("garbage that should vanish on Reset").U64(0xffffffffffffffff)
	for round := 0; round < 3; round++ {
		got := encode(w.Reset())
		if !bytes.Equal(got, fresh) {
			t.Fatalf("round %d: reused writer encoded %x, fresh writer %x", round, got, fresh)
		}
	}

	// CopyBytes must detach from the writer's buffer: mutate the writer
	// afterwards and check the earlier snapshot is untouched.
	snap := encode(w.Reset())
	w.Reset().U64(0).U64(0).U64(0).Str("overwrite the backing array")
	if !bytes.Equal(snap, fresh) {
		t.Fatalf("CopyBytes snapshot changed after writer reuse: %x != %x", snap, fresh)
	}
	if w.Len() == len(fresh) {
		t.Fatal("sanity: overwrite encoding unexpectedly same length")
	}
}
