// Package wire provides a compact little-endian binary codec for the
// dynacc control protocols (ARM requests, middleware requests and
// responses). It is a thin sticky-error wrapper around encoding/binary:
// writers never fail; readers record the first error and return zero
// values afterwards, so decoding code reads linearly and checks Err once.
package wire

import (
	"encoding/binary"
	"fmt"
	"math"
)

// Writer appends values to a buffer.
type Writer struct {
	buf []byte
}

// NewWriter returns a writer with optional initial capacity.
func NewWriter(capacity int) *Writer {
	return &Writer{buf: make([]byte, 0, capacity)}
}

// Bytes returns the encoded buffer.
func (w *Writer) Bytes() []byte { return w.buf }

// Reset empties the writer for reuse, keeping the allocated capacity.
// Bytes returned before the Reset remain valid only if the caller copied
// them (see CopyBytes): further appends reuse the same backing array.
func (w *Writer) Reset() *Writer {
	w.buf = w.buf[:0]
	return w
}

// CopyBytes returns an exact-size copy of the encoded buffer. Encode paths
// that retain encodings (retransmit queues, dedup caches) use a persistent
// writer with Reset plus CopyBytes: the writer's grown backing array is
// reused forever and each encoding costs exactly one right-sized
// allocation.
func (w *Writer) CopyBytes() []byte {
	out := make([]byte, len(w.buf))
	copy(out, w.buf)
	return out
}

// Len returns the number of encoded bytes.
func (w *Writer) Len() int { return len(w.buf) }

// U8 appends one byte.
func (w *Writer) U8(v uint8) *Writer { w.buf = append(w.buf, v); return w }

// U32 appends a uint32.
func (w *Writer) U32(v uint32) *Writer {
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
	return w
}

// U64 appends a uint64.
func (w *Writer) U64(v uint64) *Writer {
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
	return w
}

// I64 appends an int64.
func (w *Writer) I64(v int64) *Writer { return w.U64(uint64(v)) }

// Int appends an int as int64.
func (w *Writer) Int(v int) *Writer { return w.I64(int64(v)) }

// F64 appends a float64.
func (w *Writer) F64(v float64) *Writer { return w.U64(math.Float64bits(v)) }

// Str appends a length-prefixed string.
func (w *Writer) Str(s string) *Writer {
	w.U32(uint32(len(s)))
	w.buf = append(w.buf, s...)
	return w
}

// Blob appends a length-prefixed byte slice.
func (w *Writer) Blob(b []byte) *Writer {
	w.U32(uint32(len(b)))
	w.buf = append(w.buf, b...)
	return w
}

// Raw appends bytes verbatim, with no length prefix. Forwarding wrappers
// use it to splice an already-encoded request tail into a new envelope.
func (w *Writer) Raw(b []byte) *Writer {
	w.buf = append(w.buf, b...)
	return w
}

// Ints appends a count-prefixed int slice (each as int64). The shard
// replication and forwarding ops move id lists with it.
func (w *Writer) Ints(vs []int) *Writer {
	w.Int(len(vs))
	for _, v := range vs {
		w.Int(v)
	}
	return w
}

// Reader consumes values from a buffer. The first decoding error sticks;
// subsequent reads return zero values.
type Reader struct {
	buf []byte
	off int
	err error
}

// NewReader wraps buf for decoding.
func NewReader(buf []byte) *Reader { return &Reader{buf: buf} }

// Err returns the first decoding error, if any.
func (r *Reader) Err() error { return r.err }

// Remaining reports the undecoded byte count.
func (r *Reader) Remaining() int { return len(r.buf) - r.off }

func (r *Reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 {
		// int(uint32) wraps negative on 32-bit platforms; a negative count
		// must fail like any other bogus length, not slice out of range.
		r.err = fmt.Errorf("wire: invalid length %d at offset %d", n, r.off)
		return nil
	}
	if r.off+n > len(r.buf) {
		r.err = fmt.Errorf("wire: truncated message: need %d bytes at offset %d of %d", n, r.off, len(r.buf))
		return nil
	}
	b := r.buf[r.off : r.off+n]
	r.off += n
	return b
}

// U8 reads one byte.
func (r *Reader) U8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U32 reads a uint32.
func (r *Reader) U32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 reads a uint64.
func (r *Reader) U64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// I64 reads an int64.
func (r *Reader) I64() int64 { return int64(r.U64()) }

// Int reads an int64 as int.
func (r *Reader) Int() int { return int(r.I64()) }

// F64 reads a float64.
func (r *Reader) F64() float64 { return math.Float64frombits(r.U64()) }

// Str reads a length-prefixed string.
func (r *Reader) Str() string {
	n := r.U32()
	b := r.take(int(n))
	return string(b)
}

// Blob reads a length-prefixed byte slice (aliasing the input buffer).
func (r *Reader) Blob() []byte {
	n := r.U32()
	return r.take(int(n))
}

// Rest returns every undecoded byte (aliasing the input buffer) and
// consumes them. The counterpart of Writer.Raw.
func (r *Reader) Rest() []byte {
	return r.take(r.Remaining())
}

// Ints reads a count-prefixed int slice. A count that cannot fit in the
// remaining bytes fails like any other truncation (bounding allocation
// before it happens).
func (r *Reader) Ints() []int {
	n := r.Int()
	if r.err != nil || n == 0 {
		return nil
	}
	if n < 0 || n > r.Remaining()/8 {
		r.err = fmt.Errorf("wire: invalid int-slice count %d with %d bytes left", n, r.Remaining())
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.Int()
	}
	return out
}
