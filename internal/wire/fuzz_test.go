package wire

import (
	"bytes"
	"math"
	"testing"
)

// FuzzRoundTrip checks that any value sequence written through Writer
// reads back identically, with no residue and no error.
func FuzzRoundTrip(f *testing.F) {
	f.Add(uint8(1), uint32(2), uint64(3), int64(-4), 1.5, "hello", []byte{9, 8, 7})
	f.Add(uint8(0), uint32(0), uint64(0), int64(0), 0.0, "", []byte(nil))
	f.Add(uint8(255), uint32(math.MaxUint32), uint64(math.MaxUint64),
		int64(math.MinInt64), math.Inf(-1), "\x00\xff", bytes.Repeat([]byte{0xAA}, 300))
	f.Fuzz(func(t *testing.T, u8 uint8, u32 uint32, u64 uint64, i64 int64, fl float64, s string, b []byte) {
		w := NewWriter(0)
		w.U8(u8).U32(u32).U64(u64).I64(i64).F64(fl).Str(s).Blob(b).Int(int(i64))
		r := NewReader(w.Bytes())
		if got := r.U8(); got != u8 {
			t.Fatalf("U8: got %d want %d", got, u8)
		}
		if got := r.U32(); got != u32 {
			t.Fatalf("U32: got %d want %d", got, u32)
		}
		if got := r.U64(); got != u64 {
			t.Fatalf("U64: got %d want %d", got, u64)
		}
		if got := r.I64(); got != i64 {
			t.Fatalf("I64: got %d want %d", got, i64)
		}
		if got := r.F64(); got != fl && !(math.IsNaN(got) && math.IsNaN(fl)) {
			t.Fatalf("F64: got %v want %v", got, fl)
		}
		if got := r.Str(); got != s {
			t.Fatalf("Str: got %q want %q", got, s)
		}
		if got := r.Blob(); !bytes.Equal(got, b) {
			t.Fatalf("Blob: got %x want %x", got, b)
		}
		if got := r.Int(); got != int(i64) {
			t.Fatalf("Int: got %d want %d", got, int(i64))
		}
		if err := r.Err(); err != nil {
			t.Fatalf("round trip error: %v", err)
		}
		if r.Remaining() != 0 {
			t.Fatalf("%d bytes left over", r.Remaining())
		}
	})
}

// FuzzReaderGarbage drives every reader method over raw bytes: no input
// may panic, and after the first error every read returns a zero value.
func FuzzReaderGarbage(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 2, 3})
	f.Add(NewWriter(0).Str("x").Blob([]byte{1}).Bytes())
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF}) // Blob/Str length prefix 2^32-1
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(data)
		for i := 0; r.Err() == nil && i < 64; i++ {
			switch i % 6 {
			case 0:
				r.U8()
			case 1:
				r.U32()
			case 2:
				r.Str()
			case 3:
				r.Blob()
			case 4:
				r.U64()
			case 5:
				r.F64()
			}
			if r.Remaining() == 0 {
				break
			}
		}
		if r.Err() != nil {
			if got := r.Blob(); got != nil {
				t.Fatalf("read after error returned data: %x", got)
			}
			if got := r.Str(); got != "" {
				t.Fatalf("read after error returned data: %q", got)
			}
		}
	})
}
