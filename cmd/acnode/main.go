// Command acnode serves the infrastructure ranks of a socket-mode
// accelerator cluster: the accelerator daemons and/or the resource
// manager that one process of the topology hosts. Start one acnode per
// infrastructure process, then run the application (e.g. cmd/acsoak with
// -topo/-proc) against the same topology; acnode exits when the
// application's teardown shuts its ranks down over the wire.
//
// Usage:
//
//	acnode -cn 1 -ac 2 \
//	    -topo "cn@127.0.0.1:7000;ac@127.0.0.1:7001;arm@127.0.0.1:7002" \
//	    -proc 1
//
// The cluster-shape flags (-cn, -ac, -spares, -share, -execute) and the
// topology string must be identical across every process of the cluster:
// they define the world-rank layout each peer claims during the
// connection handshake.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"

	"dynacc/internal/cluster"
	"dynacc/internal/gpu"
	"dynacc/internal/magma"
)

func main() {
	var (
		topoSpec = flag.String("topo", "", `process table: "roles@host:port;..." (roles: cn, cn0, ac, ac0-1, arm)`)
		proc     = flag.Int("proc", -1, "index of this process in the topology")
		cn       = flag.Int("cn", 1, "compute nodes in the cluster")
		ac       = flag.Int("ac", 2, "accelerator nodes")
		spares   = flag.Int("spares", 0, "spare accelerator nodes")
		share    = flag.Int("share", 0, "shared-lease capacity per accelerator (0 = exclusive only)")
		execute  = flag.Bool("execute", true, "run devices in execute mode (real data)")
		token    = flag.String("token", "", "connection token; must match on every process")
	)
	flag.Parse()
	if *topoSpec == "" || *proc < 0 {
		fmt.Fprintln(os.Stderr, "acnode: -topo and -proc are required")
		flag.Usage()
		os.Exit(2)
	}

	reg := gpu.NewRegistry()
	magma.RegisterKernels(reg)
	cfg := cluster.Config{
		ComputeNodes:      *cn,
		Accelerators:      *ac,
		SpareAccelerators: *spares,
		ShareCapacity:     *share,
		Execute:           *execute,
		Registry:          reg,
	}
	topo, err := cluster.ParseTopology(cfg, *topoSpec)
	if err != nil {
		fatal(err)
	}
	topo.Token = *token

	m, err := cluster.StartProcess(cfg, topo, *proc)
	if err != nil {
		fatal(err)
	}
	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-sigc
		fmt.Fprintln(os.Stderr, "acnode: interrupted, stopping")
		m.Stop()
	}()

	fmt.Fprintf(os.Stderr, "acnode: proc %d serving ranks %v on %s\n",
		*proc, topo.Procs[*proc].Ranks, m.Transport().Addr())
	if err := m.Serve(); err != nil {
		fatal(err)
	}
	st := m.Transport().Stats()
	fmt.Fprintf(os.Stderr, "acnode: done; frames sent %d recv %d, reconnects %d, handshake failures %d\n",
		st.FramesSent, st.FramesReceived, st.Reconnects, st.HandshakeFailures)
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acnode: %v\n", err)
	os.Exit(1)
}
