// Command acsoak is an open-loop soak driver for the socket-mode cluster:
// it runs the paper's two headline workloads — hybrid QR factorization on
// network-attached GPUs and multi-tenant shared sessions — over real TCP
// for a fixed wall-clock duration and reports message/byte/retry counters
// as JSON.
//
// By default it is self-contained: the client process, the accelerator
// daemons and the resource manager each get their own loopback listener
// inside this one OS process, joined by real sockets. With -topo/-proc it
// instead joins an externally started topology (see cmd/acnode) as the
// process hosting compute node 0.
//
// The exit status asserts the soak's health: nonzero when any handshake
// failed, when no operation completed, or when any operation errored.
//
// Usage:
//
//	acsoak -duration 5s                  # self-contained loopback soak
//	acsoak -ac 4 -shards 2 -duration 10s # sharded resource management
//	acsoak -topo "cn@...;ac@...;arm@..." -proc 0   # join acnodes
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sync"
	"time"

	"dynacc/internal/accel"
	"dynacc/internal/cluster"
	"dynacc/internal/core"
	"dynacc/internal/gpu"
	"dynacc/internal/lapack"
	"dynacc/internal/magma"
	"dynacc/internal/minimpi"
	"dynacc/internal/sim"
)

type transportReport struct {
	Proc              int   `json:"proc"`
	Dials             int64 `json:"dials"`
	Reconnects        int64 `json:"reconnects"`
	HandshakeFailures int64 `json:"handshake_failures"`
	FramesSent        int64 `json:"frames_sent"`
	FramesReceived    int64 `json:"frames_received"`
	FramesResent      int64 `json:"frames_resent"`
	BytesSent         int64 `json:"bytes_sent"`
	BytesReceived     int64 `json:"bytes_received"`
}

type report struct {
	DurationSec float64           `json:"duration_sec"`
	QROps       int               `json:"qr_ops"`
	SessionOps  int               `json:"session_ops"`
	Errors      int               `json:"errors"`
	Client      transportReport   `json:"client"`
	Infra       []transportReport `json:"infra,omitempty"`
}

func main() {
	var (
		duration = flag.Duration("duration", 5*time.Second, "soak length (wall clock)")
		ac       = flag.Int("ac", 3, "accelerator nodes (self-contained mode)")
		shards   = flag.Int("shards", 1, "ARM shards (self-contained mode; <2 = single manager)")
		share    = flag.Int("share", 2, "shared-lease capacity per accelerator")
		qrGPUs   = flag.Int("qr-gpus", 2, "network-attached GPUs per QR factorization")
		qrN      = flag.Int("qr-n", 96, "QR matrix size")
		qrNB     = flag.Int("qr-nb", 16, "QR block width")
		topoSpec = flag.String("topo", "", "join an external topology instead of self-hosting (see acnode)")
		proc     = flag.Int("proc", 0, "this process's index in -topo (must host compute node 0)")
		token    = flag.String("token", "", "connection token for -topo mode")
	)
	flag.Parse()

	reg := gpu.NewRegistry()
	magma.RegisterKernels(reg)
	cfg := cluster.Config{
		ComputeNodes:  1,
		Accelerators:  *ac,
		ShareCapacity: *share,
		ARMShards:     *shards,
		Execute:       true,
		Registry:      reg,
	}

	var topo cluster.Topology
	var joinInfra func() []transportReport
	var err error
	if *topoSpec != "" {
		// External mode: the acnodes own the infrastructure ranks.
		topo, err = cluster.ParseTopology(cfg, *topoSpec)
		if err != nil {
			fatal(err)
		}
		topo.Token = *token
		joinInfra = func() []transportReport { return nil }
	} else {
		// Self-contained: every tier on its own loopback listener in this
		// process — client, daemons, resource manager(s).
		topo, err = cluster.ListenTopology("acsoak", cluster.ThreeTierSplit(cfg))
		if err != nil {
			fatal(err)
		}
		if *shards > 1 {
			topo.Dir = cluster.NewShardDirectory(cfg)
		}
		var wg sync.WaitGroup
		infra := make([]*cluster.Member, 0, 2)
		for pid := 1; pid < len(topo.Procs); pid++ {
			m, err := cluster.StartProcess(cfg, topo, pid)
			if err != nil {
				fatal(err)
			}
			infra = append(infra, m)
			wg.Add(1)
			go func(pid int, m *cluster.Member) {
				defer wg.Done()
				if err := m.Serve(); err != nil {
					fmt.Fprintf(os.Stderr, "acsoak: infra proc %d: %v\n", pid, err)
				}
			}(pid, m)
		}
		joinInfra = func() []transportReport {
			done := make(chan struct{})
			go func() { wg.Wait(); close(done) }()
			select {
			case <-done:
			case <-time.After(10 * time.Second):
				fmt.Fprintln(os.Stderr, "acsoak: infrastructure did not drain; stopping it")
				for _, m := range infra {
					m.Stop()
				}
				<-done
			}
			out := make([]transportReport, 0, len(infra))
			for i, m := range infra {
				out = append(out, trReport(i+1, m.Transport().Stats()))
			}
			return out
		}
	}

	client, err := cluster.StartProcess(cfg, topo, *proc)
	if err != nil {
		fatal(err)
	}

	var rep report
	soak := func(p *sim.Proc, n *cluster.Node) {
		s := client.Cluster.Sim
		deadline := s.Now().Add(sim.Duration(duration.Nanoseconds()))
		gpus := *qrGPUs
		if gpus > *ac {
			gpus = *ac
		}
		// The QR reference factorization, computed once on the host.
		rng := rand.New(rand.NewSource(1))
		matrix := make([]float64, *qrN**qrN)
		for i := range matrix {
			matrix[i] = rng.NormFloat64()
		}
		ref := append([]float64(nil), matrix...)
		refTau := make([]float64, *qrN)
		lapack.Dgeqrf(*qrN, *qrN, ref, *qrN, refTau, *qrNB)

		for s.Now() < deadline {
			if err := qrRound(p, n, matrix, ref, *qrN, *qrNB, gpus); err != nil {
				fmt.Fprintf(os.Stderr, "acsoak: qr: %v\n", err)
				rep.Errors++
			} else {
				rep.QROps++
			}
			if s.Now() >= deadline {
				break
			}
			if err := sessionRound(p, n, rep.SessionOps); err != nil {
				fmt.Fprintf(os.Stderr, "acsoak: session: %v\n", err)
				rep.Errors++
			} else {
				rep.SessionOps++
			}
		}
	}
	if err := client.Spawn(0, soak); err != nil {
		fatal(err)
	}

	start := time.Now()
	if err := client.Run(); err != nil {
		fatal(err)
	}
	rep.DurationSec = time.Since(start).Seconds()
	rep.Client = trReport(*proc, client.Transport().Stats())
	rep.Infra = joinInfra()

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fatal(err)
	}

	failures := rep.Client.HandshakeFailures
	for _, ir := range rep.Infra {
		failures += ir.HandshakeFailures
	}
	switch {
	case failures > 0:
		fmt.Fprintf(os.Stderr, "acsoak: FAIL: %d handshake failures\n", failures)
		os.Exit(1)
	case rep.QROps+rep.SessionOps == 0:
		fmt.Fprintln(os.Stderr, "acsoak: FAIL: no operations completed")
		os.Exit(1)
	case rep.Errors > 0:
		fmt.Fprintf(os.Stderr, "acsoak: FAIL: %d operations errored\n", rep.Errors)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "acsoak: ok: %d QR + %d session ops in %.1fs\n",
		rep.QROps, rep.SessionOps, rep.DurationSec)
}

// qrRound acquires GPUs from the pool, factors the matrix on them with
// the MAGMA-style hybrid QR, verifies the result against the host LAPACK
// reference, and releases the GPUs.
func qrRound(p *sim.Proc, n *cluster.Node, matrix, ref []float64, size, nb, gpus int) error {
	handles, err := n.ARM.Acquire(p, gpus, true)
	if err != nil {
		return fmt.Errorf("acquire: %w", err)
	}
	defer n.ARM.Release(p, handles)
	devs := make([]magma.Device, 0, len(handles))
	for _, h := range handles {
		devs = append(devs, accel.Remote(n.Attach(h)))
	}
	dist, err := magma.NewDist(p, devs, size, size, nb, true)
	if err != nil {
		return err
	}
	defer dist.Free(p)
	if err := dist.Upload(p, matrix); err != nil {
		return err
	}
	tau := make([]float64, size)
	mcfg := magma.DefaultConfig()
	mcfg.NB = nb
	if err := magma.Dgeqrf(p, dist, tau, mcfg); err != nil {
		return err
	}
	got := make([]float64, size*size)
	if err := dist.Download(p, got); err != nil {
		return err
	}
	for i := range got {
		if d := math.Abs(got[i] - ref[i]); d > 1e-8 {
			return fmt.Errorf("QR diverged from LAPACK at %d: |diff| = %.2e", i, d)
		}
	}
	return nil
}

// sessionRound exercises the multi-tenant path: a shared lease on one
// accelerator, two isolated sessions on it, and an
// alloc/memset/upload/download/free cycle in each.
func sessionRound(p *sim.Proc, n *cluster.Node, round int) error {
	handles, err := n.ARM.AcquireShared(p, 1, true)
	if err != nil {
		return fmt.Errorf("acquire shared: %w", err)
	}
	defer n.ARM.Release(p, handles)
	const sz = 64 << 10
	payload := make([]byte, sz)
	for i := range payload {
		payload[i] = byte(i + round)
	}
	tenants := make([]*core.Accel, 0, 2)
	defer func() {
		for _, ac := range tenants {
			ac.CloseSession(p)
		}
	}()
	for t := 0; t < 2; t++ {
		ac, err := n.AttachSession(p, handles[0])
		if err != nil {
			return fmt.Errorf("tenant %d attach: %w", t, err)
		}
		tenants = append(tenants, ac)
		ptr, err := ac.MemAlloc(p, sz)
		if err != nil {
			return fmt.Errorf("tenant %d alloc: %w", t, err)
		}
		if err := ac.Memset(p, ptr, 0, sz, 0); err != nil {
			return fmt.Errorf("tenant %d memset: %w", t, err)
		}
		if err := ac.MemcpyH2D(p, ptr, 0, payload, sz); err != nil {
			return fmt.Errorf("tenant %d h2d: %w", t, err)
		}
		back := make([]byte, sz)
		if err := ac.MemcpyD2H(p, back, ptr, 0, sz); err != nil {
			return fmt.Errorf("tenant %d d2h: %w", t, err)
		}
		for i := range back {
			if back[i] != payload[i] {
				return fmt.Errorf("tenant %d corrupt at byte %d", t, i)
			}
		}
		if err := ac.MemFree(p, ptr); err != nil {
			return fmt.Errorf("tenant %d free: %w", t, err)
		}
	}
	return nil
}

func trReport(proc int, st minimpi.TransportStats) transportReport {
	return transportReport{
		Proc:              proc,
		Dials:             st.Dials,
		Reconnects:        st.Reconnects,
		HandshakeFailures: st.HandshakeFailures,
		FramesSent:        st.FramesSent,
		FramesReceived:    st.FramesReceived,
		FramesResent:      st.FramesResent,
		BytesSent:         st.BytesSent,
		BytesReceived:     st.BytesReceived,
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "acsoak: %v\n", err)
	os.Exit(1)
}
