// Command acsim runs the resource-management studies of the dynamic
// accelerator-cluster architecture.
//
// Pool mode (default) drives a synthetic job mix through the accelerator
// resource manager and reports utilization, queueing delay and makespan
// — the paper's "economy" claim (Section III) made measurable:
//
//	acsim -cn 6 -ac 4 -policy backfill -seed 7
//
// Batch mode replays a generated batch workload on both architectures at
// equal hardware (the paper's Section V-B production story):
//
//	acsim -mode batch -cn 8 -ac 4 -jobs 40
package main

import (
	"flag"
	"fmt"
	"os"

	"dynacc/internal/arm"
	"dynacc/internal/batch"
	"dynacc/internal/bench"
)

func main() {
	mode := flag.String("mode", "pool", "study: pool (ARM utilization) or batch (static vs dynamic)")
	cns := flag.Int("cn", 6, "compute nodes")
	acs := flag.Int("ac", 4, "accelerators in the pool")
	policyName := flag.String("policy", "fifo", "ARM queueing policy: fifo or backfill")
	seed := flag.Int64("seed", 42, "workload seed")
	jobs := flag.Int("jobs", 40, "batch mode: job count")
	flag.Parse()

	if *cns <= 0 || *acs <= 0 {
		fmt.Fprintln(os.Stderr, "acsim: -cn and -ac must be positive")
		os.Exit(2)
	}
	switch *mode {
	case "pool":
		runPoolStudy(*cns, *acs, *policyName, *seed)
	case "batch":
		runBatchStudy(*cns, *acs, *seed, *jobs)
	default:
		fmt.Fprintf(os.Stderr, "acsim: unknown mode %q\n", *mode)
		os.Exit(2)
	}
}

func runPoolStudy(cns, acs int, policyName string, seed int64) {
	var policy arm.Policy
	switch policyName {
	case "fifo":
		policy = arm.FIFO
	case "backfill":
		policy = arm.Backfill
	default:
		fmt.Fprintf(os.Stderr, "acsim: unknown policy %q\n", policyName)
		os.Exit(2)
	}
	res := bench.RunPool(cns, acs, policy, seed)
	fmt.Printf("compute nodes:     %d\n", cns)
	fmt.Printf("accelerator pool:  %d (%s)\n", acs, policy)
	fmt.Printf("pool utilization:  %.1f%%\n", res.Utilization*100)
	fmt.Printf("mean acquire wait: %.1f ms\n", res.MeanWaitMs)
	fmt.Printf("makespan:          %.3f s (virtual)\n", res.MakespanS)
}

func runBatchStudy(cns, acs int, seed int64, jobs int) {
	mix := batch.DefaultMix(seed)
	mix.Jobs = jobs
	mix.MaxTotalACs = acs
	workload := batch.Generate(mix)
	static, err := batch.Run(batch.Config{
		Mode: batch.Static, ComputeNodes: cns, Accelerators: acs, GPUsPerNode: 1, Backfill: true,
	}, workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acsim: static: %v\n", err)
		os.Exit(1)
	}
	dynamic, err := batch.Run(batch.Config{
		Mode: batch.Dynamic, ComputeNodes: cns, Accelerators: acs, Backfill: true,
	}, workload)
	if err != nil {
		fmt.Fprintf(os.Stderr, "acsim: dynamic: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("workload: %d jobs on %d nodes, %d accelerators (seed %d)\n", jobs, cns, acs, seed)
	fmt.Printf("%-22s %12s %12s\n", "", "static", "dynamic")
	fmt.Printf("%-22s %11.3fs %11.3fs\n", "makespan", static.Makespan.Seconds(), dynamic.Makespan.Seconds())
	fmt.Printf("%-22s %11.1fms %11.1fms\n", "mean wait", static.MeanWaitMs, dynamic.MeanWaitMs)
	fmt.Printf("%-22s %11.1fms %11.1fms\n", "mean turnaround", static.MeanTurnaroundMs, dynamic.MeanTurnaroundMs)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "node utilization", static.NodeUtilization*100, dynamic.NodeUtilization*100)
	fmt.Printf("%-22s %11.1f%% %11.1f%%\n", "AC utilization", static.ACUtilization*100, dynamic.ACUtilization*100)
}
