package main

import "testing"

func TestResolve(t *testing.T) {
	all, err := resolve("all")
	if err != nil || len(all) < 10 {
		t.Fatalf("all = %v, %v", all, err)
	}
	for arg, want := range map[string]string{
		"5":     "fig5",
		"fig10": "fig10",
		"extB":  "extB",
		"EXTC":  "extC",
		"extd":  "extD",
	} {
		ids, err := resolve(arg)
		if err != nil || len(ids) != 1 || ids[0] != want {
			t.Errorf("resolve(%q) = %v, %v; want %s", arg, ids, err, want)
		}
	}
	if _, err := resolve("fig99"); err == nil {
		t.Error("bogus figure accepted")
	}
}
