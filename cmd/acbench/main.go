// Command acbench regenerates the paper's evaluation: every figure of
// "A Dynamic Accelerator-Cluster Architecture" (ICPP 2012) plus the
// extension experiments described in DESIGN.md, printed as aligned tables
// or CSV.
//
// Usage:
//
//	acbench                 # all experiments, tables
//	acbench -fig 5          # just Figure 5
//	acbench -fig extA       # the pool-utilization extension
//	acbench -format csv     # CSV output
//	acbench -quick          # reduced grids (smoke test)
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"time"

	"dynacc/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", `experiment id: 5..11, fig5..fig11, extA, extB, or "all"`)
	format := flag.String("format", "table", "output format: table or csv")
	quick := flag.Bool("quick", false, "reduced parameter grids")
	batchJSON := flag.String("batching-json", "", "run the command-batching launch storm and write the report to this file")
	armJSON := flag.String("arm-json", "", "run the multi-tenant sharing workload and write the ARM's per-accelerator stats to this file")
	fleetJSON := flag.String("fleet-json", "", "run the 32-daemon/96-tenant fleet benchmark and write the engine-cost report to this file")
	heteroJSON := flag.String("hetero-json", "", "run the mixed-fleet QR comparison and write the per-class utilization report to this file")
	dataplaneJSON := flag.String("dataplane-json", "", "run the data-plane comparison (tree panel broadcast, direct redistribution) and write the report to this file")
	shards := flag.Int("shards", 1, "ARM shard count for -arm-json and -fleet-json workloads (<2 = single legacy ARM)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile taken at exit to this file")
	flag.Parse()

	if *cpuProfile != "" {
		f, err := os.Create(*cpuProfile)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memProfile != "" {
		defer func() {
			f, err := os.Create(*memProfile)
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				return
			}
			defer f.Close()
			runtime.GC()
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, err)
			}
		}()
	}

	if *fleetJSON != "" {
		cfg := bench.DefaultFleetConfig()
		cfg.Shards = *shards
		r, err := bench.WriteFleetJSON(*fleetJSON, cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fl := r.Fleet
		fmt.Printf("fleet (%d daemons, %d tenants, %d ARM shard(s)): %d ops in %.0f ms wall, %.0f allocs/op, %.1f ops per virtual second\n",
			fl.Daemons, fl.Tenants, fl.Shards, fl.Ops, float64(fl.WallNS)/1e6, fl.PerOp, fl.OpsPerVirtualSec)
		for _, hp := range r.HotPaths {
			fmt.Printf("  %s: %.0f ms wall (%.2fx vs seed), %d allocs (%.2fx fewer than seed)\n",
				hp.Name, float64(hp.WallNS)/1e6, hp.WallSpeedup, hp.Allocs, hp.AllocRatio)
		}
		return
	}

	if *heteroJSON != "" {
		r, err := bench.WriteHeteroJSON(*heteroJSON, 4032, 128)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("hetero QR (%s, N=%d, NB=%d): classic %.1f ms, split-panel %.1f ms (%.2fx), panel on %s\n",
			r.Fleet, r.N, r.NB, 1e3*r.ClassicSecs, 1e3*r.HeteroSecs, r.Speedup, r.PanelClass)
		for _, c := range r.PerClass {
			fmt.Printf("  class %-6s: %d device(s), %d grant(s), busy %.3fs (%.1f%% of interval)\n",
				c.Class, c.Devices, c.Grants, c.BusySeconds, 100*c.Utilization)
		}
		return
	}

	if *dataplaneJSON != "" {
		r, err := bench.WriteDataplaneJSON(*dataplaneJSON)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		for _, b := range r.Broadcast {
			fmt.Printf("panel broadcast (%d GPUs, %.1f MiB): host loop %.2f ms, tree %.2f ms (%.2fx), host NIC %.1f -> %.1f MiB\n",
				b.GPUs, float64(b.PanelBytes)/(1<<20), 1e3*b.HostSecs, 1e3*b.TreeSecs, b.Speedup,
				float64(b.HostLoopNICBytes)/(1<<20), float64(b.TreeNICBytes)/(1<<20))
		}
		for _, rd := range r.Redist {
			fmt.Printf("redistribute %s (%d->%d GPUs, %d blocks, %d unchanged): staged %d B, default %d B, direct %d B, unchanged payload %d B\n",
				rd.Scenario, rd.FromGPUs, rd.ToGPUs, rd.Blocks, rd.Unchanged,
				rd.StagedWireBytes, rd.DefaultWireBytes, rd.DirectWireBytes, rd.UnchangedPayloadBytes)
		}
		return
	}

	if *armJSON != "" {
		r, err := bench.WriteARMJSON(*armJSON, 3, 200, *shards)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("sharing (%d tenants x %d ops, capacity %d, %d ARM shard(s)): %d session(s) on %d shared accelerator(s)\n",
			r.Tenants, r.OpsPerTenant, r.ShareCapacity, r.Shards, r.Sessions, r.SharedAccels)
		for _, a := range r.PerAccel {
			fmt.Printf("  ac%d (rank %d, %s): %d sessions, %d grants, busy %.1f%%\n",
				a.ID, a.Rank, a.State, a.Sessions, a.Grants, 100*a.Utilization)
		}
		return
	}

	if *batchJSON != "" {
		r, err := bench.WriteBatchingJSON(*batchJSON, 1000)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Printf("launch storm (%d launches): %.0f ops/s unbatched, %.0f ops/s batched (%.1fx), wire messages %d -> %d (%.1fx fewer)\n",
			r.Launches, r.Unbatched.OpsPerSec, r.Batched.OpsPerSec, r.Speedup,
			r.Unbatched.WireMsgs, r.Batched.WireMsgs, r.MsgRatio)
		return
	}

	ids, err := resolve(*fig)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}
	opts := bench.Options{Quick: *quick}
	gens := bench.Figures()
	for _, id := range ids {
		start := time.Now()
		f := gens[id](opts)
		switch *format {
		case "csv":
			fmt.Print(f.CSV())
		case "table":
			fmt.Print(f.Table())
			fmt.Printf("# generated in %v\n\n", time.Since(start).Round(time.Millisecond))
		default:
			fmt.Fprintf(os.Stderr, "unknown format %q\n", *format)
			os.Exit(2)
		}
	}
}

func resolve(arg string) ([]string, error) {
	if arg == "all" {
		return bench.FigureOrder(), nil
	}
	id := strings.ToLower(arg)
	if !strings.HasPrefix(id, "fig") && !strings.HasPrefix(id, "ext") {
		id = "fig" + id
	}
	for _, known := range bench.FigureOrder() {
		if strings.EqualFold(known, id) {
			return []string{known}, nil
		}
	}
	return nil, fmt.Errorf("acbench: unknown experiment %q (have %s)", arg,
		strings.Join(bench.FigureOrder(), ", "))
}
