module dynacc

go 1.22
