// Package dynacc is a full reproduction, in pure Go, of the system
// described in "A Dynamic Accelerator-Cluster Architecture" (Rinke,
// Becker, Lippert, Prabhakaran, Westphal, Wolf — ICPP 2012): a cluster
// architecture in which GPUs are not bolted to individual compute nodes
// but form a network-attached pool, assigned to nodes on demand by an
// accelerator resource manager and driven through a CUDA-like
// computation API forwarded over an MPI-based protocol with pipelined,
// GPUDirect-style memory copies.
//
// Since the original system needs CUDA GPUs, QDR InfiniBand and MPI, the
// reproduction runs the entire stack inside a deterministic discrete-
// event simulation: internal/sim is the simulation kernel, internal/
// minimpi an MPI-flavoured message layer with a calibrated InfiniBand
// cost model, internal/gpu a virtual Tesla-C1060-class device, and
// internal/core the paper's middleware itself (front-end API, back-end
// daemon, copy protocols). internal/arm implements the resource manager,
// internal/magma and internal/mp2c the paper's two application studies,
// and internal/bench regenerates every figure of the evaluation
// (Figures 5-11). See DESIGN.md for the full inventory and EXPERIMENTS.md
// for the paper-versus-measured record.
//
// The benchmarks in bench_test.go wrap the figure generators; run
//
//	go test -bench=. -benchmem
//
// or use cmd/acbench for the complete tables.
package dynacc
